"""Algorithm 1 — energy-efficient broadcasting in random networks.

The paper's first contribution (Section 2, Theorem 2.1): on a directed
``G(n, p)`` with ``p > δ log n / n``, broadcasting completes in ``O(log n)``
rounds w.h.p. while **every node transmits at most once**, for an expected
total of ``O(log n / p)`` transmissions.

The protocol runs in three phases driven only by ``n`` and ``p`` (both known
to every node) and each node's own history:

Phase 1 (rounds ``1 .. T`` with ``T = ⌊log n / log d⌋``, ``d = n p``)
    Every *active* node transmits (probability 1) and becomes passive; a node
    becomes active the first time it receives the message.  The informed set
    grows by a factor ``Θ(d)`` per round (Lemma 2.3) and reaches ``Θ(d^T)``
    (Lemma 2.4).

Phase 2 (one round, only when ``p ≤ n^{-2/5}``)
    Every active node transmits with probability ``1/(d^T p)`` and becomes
    passive (whether or not it transmitted).  This boosts the informed set to
    ``Θ(n)`` (Lemma 2.5).

Phase 3 (``β log n`` rounds)
    Every active node transmits with probability ``1/d`` (or ``1/(d p)`` when
    ``p > n^{-2/5}``) and becomes passive *only after transmitting*.  Nodes
    informed during Phase 3 never become active — Lemma 2.6 shows the pool of
    Phase-2 activations suffices to inform everyone w.h.p.

Because a node retires the moment it transmits (and Phase-3 recruits never
transmit), the "at most one transmission per node" invariant holds by
construction; the tests assert it on every run.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

import numpy as np

from repro._util.logmath import expected_degree, phase1_round_count
from repro._util.validation import check_positive, check_probability
from repro.radio.collision import CollisionOutcome
from repro.radio.protocol import BroadcastProtocol

__all__ = ["EnergyEfficientBroadcast"]

# Node states.
_UNINFORMED = 0
_ACTIVE = 1
_PASSIVE = 2


class EnergyEfficientBroadcast(BroadcastProtocol):
    """Algorithm 1 of the paper.

    Parameters
    ----------
    p:
        The edge probability of the underlying ``G(n, p)``; the paper's model
        assumes nodes know the network parameters ``n`` and ``p`` (they do
        not know the topology).
    source:
        The broadcast originator.
    beta:
        Phase-3 length multiplier: Phase 3 runs for ``ceil(beta * log2 n)``
        rounds.  The paper's proof uses ``128 log n / c`` rounds for a small
        constant ``c``; empirically ``beta = 8`` already gives > 0.99 success
        on the sizes we simulate, and the E12 ablation sweeps it.
    phase2_threshold_exponent:
        Phase 2 is executed when ``p <= n ** -phase2_threshold_exponent``;
        the paper uses ``2/5``.  Exposed for the E11 ablation.
    phase1_overshoot_factor:
        Finite-size refinement of the Phase-1 length.  The paper sets
        ``T = ⌊log n / log d⌋``; when ``log n / log d`` sits just above an
        integer, ``d^T`` is within a small factor of ``n``, Phase 1 already
        informs a constant fraction of all nodes, and the Phase-2 probability
        ``1/(d^T p) ≈ 1/d`` recruits too small an active pool for Phase 3
        (the paper's proof covers this corner only through its enormous
        constants ``c₁ = 16⁻⁴4⁻³`` etc.).  When ``d^T ≥ n / factor`` we
        therefore shorten Phase 1 by one round (never below one), which keeps
        both the O(log n) time and the ≤1-transmission invariant.  Set to 0
        to disable and use the paper's literal ``T``.
    dense_min_degree_factor:
        Finite-size refinement of the regime gate.  The paper's dense branch
        (skip Phase 2, Phase-3 probability ``1/(dp)``) relies on the Phase-3
        pool ``U_2`` of size ``≈ d`` giving every node ``≈ d·p = n p²``
        active neighbours, which must be ``Ω(log n)`` for the w.h.p.
        argument (Lemma 2.6, Case 2).  Asymptotically ``p > n^{-2/5}``
        implies ``n p² ≥ n^{1/5} ≫ log n``, but at laptop sizes it does not,
        so we additionally require ``n p² ≥ dense_min_degree_factor · log₂ n``
        before taking the dense branch.  Set to 0 to recover the paper's
        literal gate (the E11 ablation does).
    enable_phase2:
        Ablation switch (E11): when False, Phase 2 is skipped even in the
        sparse regime.
    """

    name = "algorithm1-energy-efficient-broadcast"

    def __init__(
        self,
        p: float,
        *,
        source: int = 0,
        beta: float = 8.0,
        phase2_threshold_exponent: float = 0.4,
        phase1_overshoot_factor: float = 2.0,
        dense_min_degree_factor: float = 2.0,
        enable_phase2: bool = True,
    ):
        super().__init__(source=source)
        self.p = check_probability(p, "p", allow_zero=False)
        self.beta = check_positive(beta, "beta")
        self.phase2_threshold_exponent = check_positive(
            phase2_threshold_exponent, "phase2_threshold_exponent"
        )
        if dense_min_degree_factor < 0:
            raise ValueError(
                f"dense_min_degree_factor must be >= 0, got {dense_min_degree_factor}"
            )
        if phase1_overshoot_factor < 0:
            raise ValueError(
                f"phase1_overshoot_factor must be >= 0, got {phase1_overshoot_factor}"
            )
        self.dense_min_degree_factor = float(dense_min_degree_factor)
        self.phase1_overshoot_factor = float(phase1_overshoot_factor)
        self.enable_phase2 = bool(enable_phase2)

        # Filled in at bind time (depend on n).
        self._status: Optional[np.ndarray] = None
        self.T: int = 0
        self.d: float = 0.0
        self.phase2_round: Optional[int] = None
        self.phase3_start: int = 0
        self.phase3_rounds: int = 0
        self.phase3_probability: float = 0.0
        self.phase2_probability: float = 0.0
        self.run_metadata: Dict[str, object] = {}
        self._active_history: List[int] = []

    # ------------------------------------------------------------------ #
    # Setup
    # ------------------------------------------------------------------ #
    def _setup_broadcast(self) -> None:
        n = self.n
        self.d = max(expected_degree(n, self.p), 1.0 + 1e-9)
        self.T = max(1, phase1_round_count(n, self.p))
        if (
            self.phase1_overshoot_factor > 0
            and self.T > 1
            and self.d**self.T >= n / self.phase1_overshoot_factor
        ):
            self.T -= 1
        log_n = max(1.0, math.log2(n))

        # The paper's gate is "dense iff p > n^{-2/5}"; additionally require
        # the dense branch's Phase-3 pool to give Omega(log n) active
        # neighbours per node (n p^2 >= factor * log n), which the asymptotic
        # gate implies for large n but not at the sizes we simulate.
        paper_dense = self.p > n ** (-self.phase2_threshold_exponent)
        dense_viable = (
            n * self.p**2 >= self.dense_min_degree_factor * log_n
            if self.dense_min_degree_factor > 0
            else True
        )
        sparse_regime = not (paper_dense and dense_viable)
        self._sparse_regime = sparse_regime
        run_phase2 = self.enable_phase2 and sparse_regime

        if run_phase2:
            self.phase2_round = self.T
            self.phase3_start = self.T + 1
            self.phase2_probability = min(1.0, 1.0 / ((self.d**self.T) * self.p))
        else:
            self.phase2_round = None
            self.phase3_start = self.T
            self.phase2_probability = 0.0

        if sparse_regime:
            self.phase3_probability = min(1.0, 1.0 / self.d)
        else:
            self.phase3_probability = min(1.0, 1.0 / (self.d * self.p))
        self.phase3_rounds = int(math.ceil(self.beta * log_n))

        self._status = np.full(n, _UNINFORMED, dtype=np.int8)
        self._status[self.source] = _ACTIVE
        self._active_history = []
        self.run_metadata = {
            "p": self.p,
            "d": self.d,
            "T": self.T,
            "phase2_round": self.phase2_round,
            "phase3_start": self.phase3_start,
            "phase3_rounds": self.phase3_rounds,
            "phase2_probability": self.phase2_probability,
            "phase3_probability": self.phase3_probability,
            "sparse_regime": sparse_regime,
            "active_history": self._active_history,
        }

    # ------------------------------------------------------------------ #
    # Round logic
    # ------------------------------------------------------------------ #
    def phase_of_round(self, round_index: int) -> str:
        """Which phase (``"phase1"``, ``"phase2"``, ``"phase3"``, ``"done"``) a round belongs to."""
        if round_index < self.T:
            return "phase1"
        if self.phase2_round is not None and round_index == self.phase2_round:
            return "phase2"
        if round_index < self.phase3_start + self.phase3_rounds:
            return "phase3"
        return "done"

    def transmit_mask(self, round_index: int) -> np.ndarray:
        status = self._status
        active = status == _ACTIVE
        self._active_history.append(int(active.sum()))
        phase = self.phase_of_round(round_index)
        if phase == "phase1":
            return active
        if phase == "phase2":
            draws = self.rng.random(self.n) < self.phase2_probability
            return active & draws
        if phase == "phase3":
            draws = self.rng.random(self.n) < self.phase3_probability
            return active & draws
        return np.zeros(self.n, dtype=bool)

    def observe(
        self,
        round_index: int,
        transmit_mask: np.ndarray,
        outcome: CollisionOutcome,
    ) -> None:
        phase = self.phase_of_round(round_index)
        status = self._status
        newly = self.mark_informed(outcome.receivers, round_index)

        if phase in ("phase1", "phase2"):
            # Every node that was active this round retires (it either
            # transmitted, or — in Phase 2 — consumed its single chance).
            status[status == _ACTIVE] = _PASSIVE
            # Nodes informed for the first time become active for the next round.
            if newly.size:
                status[newly] = _ACTIVE
        elif phase == "phase3":
            # Only nodes that actually transmitted retire; Phase-3 recruits
            # are informed but never become active (Algorithm 1, Phase 3).
            tx = np.asarray(transmit_mask, dtype=bool)
            status[tx & (status == _ACTIVE)] = _PASSIVE
            if newly.size:
                # mark_informed only returns previously uninformed nodes, so
                # these go straight to passive (informed, never active).
                status[newly] = _PASSIVE

    # ------------------------------------------------------------------ #
    # Introspection used by the experiments
    # ------------------------------------------------------------------ #
    def active_count(self) -> int:
        """Number of currently active nodes."""
        return int((self._status == _ACTIVE).sum())

    @property
    def active_history(self) -> List[int]:
        """``|U_t|`` — the number of active nodes at the start of each round."""
        return list(self._active_history)

    def is_quiescent(self, round_index: int) -> bool:
        # The schedule has a hard end (Phase 3's last round) and the active
        # pool only shrinks once Phase 3 starts, so either condition below is
        # absorbing.
        if round_index >= self.phase3_start + self.phase3_rounds:
            return True
        return self.active_count() == 0

    def suggested_max_rounds(self) -> int:
        return self.phase3_start + self.phase3_rounds + 1

    def is_complete(self) -> bool:
        # The run is over either when everyone is informed or when the
        # protocol has exhausted its schedule (it never transmits again).
        return bool(self.informed.all())

    def __repr__(self) -> str:
        return (
            f"EnergyEfficientBroadcast(p={self.p}, source={self.source}, "
            f"beta={self.beta}, enable_phase2={self.enable_phase2})"
        )
