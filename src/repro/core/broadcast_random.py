"""Algorithm 1 — energy-efficient broadcasting in random networks.

The paper's first contribution (Section 2, Theorem 2.1): on a directed
``G(n, p)`` with ``p > δ log n / n``, broadcasting completes in ``O(log n)``
rounds w.h.p. while **every node transmits at most once**, for an expected
total of ``O(log n / p)`` transmissions.

The protocol runs in three phases driven only by ``n`` and ``p`` (both known
to every node) and each node's own history:

Phase 1 (rounds ``1 .. T`` with ``T = ⌊log n / log d⌋``, ``d = n p``)
    Every *active* node transmits (probability 1) and becomes passive; a node
    becomes active the first time it receives the message.  The informed set
    grows by a factor ``Θ(d)`` per round (Lemma 2.3) and reaches ``Θ(d^T)``
    (Lemma 2.4).

Phase 2 (one round, only when ``p ≤ n^{-2/5}``)
    Every active node transmits with probability ``1/(d^T p)`` and becomes
    passive (whether or not it transmitted).  This boosts the informed set to
    ``Θ(n)`` (Lemma 2.5).

Phase 3 (``β log n`` rounds)
    Every active node transmits with probability ``1/d`` (or ``1/(d p)`` when
    ``p > n^{-2/5}``) and becomes passive *only after transmitting*.  Nodes
    informed during Phase 3 never become active — Lemma 2.6 shows the pool of
    Phase-2 activations suffices to inform everyone w.h.p.

Because a node retires the moment it transmits (and Phase-3 recruits never
transmit), the "at most one transmission per node" invariant holds by
construction; the tests assert it on every run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro._util.logmath import expected_degree, phase1_round_count
from repro._util.validation import check_positive, check_probability
from repro.radio.batch import BatchBroadcastProtocol, ScheduledTransmissions
from repro.radio.collision import BatchCollisionOutcome, CollisionOutcome
from repro.radio.nodesets import _remap_flat_pool
from repro.radio.protocol import BroadcastProtocol

__all__ = [
    "EnergyEfficientBroadcast",
    "BatchEnergyEfficientBroadcast",
    "Algorithm1Schedule",
    "compute_algorithm1_schedule",
]

# Node states.
_UNINFORMED = 0
_ACTIVE = 1
_PASSIVE = 2


@dataclass(frozen=True)
class Algorithm1Schedule:
    """The phase schedule of Algorithm 1, derived from ``(n, p)`` alone.

    Both the serial and the batched protocol compute their round logic from
    this one object, so the two implementations cannot drift apart.
    """

    n: int
    p: float
    d: float
    T: int
    phase2_round: Optional[int]
    phase3_start: int
    phase3_rounds: int
    phase2_probability: float
    phase3_probability: float
    sparse_regime: bool

    def phase_of_round(self, round_index: int) -> str:
        """Which phase (``"phase1"``, ``"phase2"``, ``"phase3"``, ``"done"``)."""
        if round_index < self.T:
            return "phase1"
        if self.phase2_round is not None and round_index == self.phase2_round:
            return "phase2"
        if round_index < self.phase3_start + self.phase3_rounds:
            return "phase3"
        return "done"

    def metadata(self) -> Dict[str, object]:
        """The schedule facts recorded in every run's metadata."""
        return {
            "p": self.p,
            "d": self.d,
            "T": self.T,
            "phase2_round": self.phase2_round,
            "phase3_start": self.phase3_start,
            "phase3_rounds": self.phase3_rounds,
            "phase2_probability": self.phase2_probability,
            "phase3_probability": self.phase3_probability,
            "sparse_regime": self.sparse_regime,
        }


def compute_algorithm1_schedule(
    n: int,
    p: float,
    *,
    beta: float,
    phase2_threshold_exponent: float,
    phase1_overshoot_factor: float,
    dense_min_degree_factor: float,
    enable_phase2: bool,
) -> Algorithm1Schedule:
    """Derive Algorithm 1's phase boundaries and probabilities for ``(n, p)``.

    See :class:`EnergyEfficientBroadcast` for the meaning of the refinement
    parameters (``phase1_overshoot_factor``, ``dense_min_degree_factor``).
    """
    d = max(expected_degree(n, p), 1.0 + 1e-9)
    T = max(1, phase1_round_count(n, p))
    if phase1_overshoot_factor > 0 and T > 1 and d**T >= n / phase1_overshoot_factor:
        T -= 1
    log_n = max(1.0, math.log2(n))

    # The paper's gate is "dense iff p > n^{-2/5}"; additionally require the
    # dense branch's Phase-3 pool to give Omega(log n) active neighbours per
    # node (n p^2 >= factor * log n), which the asymptotic gate implies for
    # large n but not at the sizes we simulate.
    paper_dense = p > n ** (-phase2_threshold_exponent)
    dense_viable = (
        n * p**2 >= dense_min_degree_factor * log_n
        if dense_min_degree_factor > 0
        else True
    )
    sparse_regime = not (paper_dense and dense_viable)
    run_phase2 = enable_phase2 and sparse_regime

    if run_phase2:
        phase2_round: Optional[int] = T
        phase3_start = T + 1
        phase2_probability = min(1.0, 1.0 / ((d**T) * p))
    else:
        phase2_round = None
        phase3_start = T
        phase2_probability = 0.0

    if sparse_regime:
        phase3_probability = min(1.0, 1.0 / d)
    else:
        phase3_probability = min(1.0, 1.0 / (d * p))
    phase3_rounds = int(math.ceil(beta * log_n))

    return Algorithm1Schedule(
        n=n,
        p=p,
        d=d,
        T=T,
        phase2_round=phase2_round,
        phase3_start=phase3_start,
        phase3_rounds=phase3_rounds,
        phase2_probability=phase2_probability,
        phase3_probability=phase3_probability,
        sparse_regime=sparse_regime,
    )


class _Algorithm1Params:
    """Shared constructor validation for the serial and batched Algorithm 1."""

    def _init_algorithm1_params(
        self,
        p: float,
        *,
        beta: float,
        phase2_threshold_exponent: float,
        phase1_overshoot_factor: float,
        dense_min_degree_factor: float,
        enable_phase2: bool,
    ) -> None:
        self.p = check_probability(p, "p", allow_zero=False)
        self.beta = check_positive(beta, "beta")
        self.phase2_threshold_exponent = check_positive(
            phase2_threshold_exponent, "phase2_threshold_exponent"
        )
        if dense_min_degree_factor < 0:
            raise ValueError(
                f"dense_min_degree_factor must be >= 0, got {dense_min_degree_factor}"
            )
        if phase1_overshoot_factor < 0:
            raise ValueError(
                f"phase1_overshoot_factor must be >= 0, got {phase1_overshoot_factor}"
            )
        self.dense_min_degree_factor = float(dense_min_degree_factor)
        self.phase1_overshoot_factor = float(phase1_overshoot_factor)
        self.enable_phase2 = bool(enable_phase2)

    def _compute_schedule(self, n: int) -> Algorithm1Schedule:
        return compute_algorithm1_schedule(
            n,
            self.p,
            beta=self.beta,
            phase2_threshold_exponent=self.phase2_threshold_exponent,
            phase1_overshoot_factor=self.phase1_overshoot_factor,
            dense_min_degree_factor=self.dense_min_degree_factor,
            enable_phase2=self.enable_phase2,
        )


class EnergyEfficientBroadcast(_Algorithm1Params, BroadcastProtocol):
    """Algorithm 1 of the paper.

    Parameters
    ----------
    p:
        The edge probability of the underlying ``G(n, p)``; the paper's model
        assumes nodes know the network parameters ``n`` and ``p`` (they do
        not know the topology).
    source:
        The broadcast originator.
    beta:
        Phase-3 length multiplier: Phase 3 runs for ``ceil(beta * log2 n)``
        rounds.  The paper's proof uses ``128 log n / c`` rounds for a small
        constant ``c``; empirically ``beta = 8`` already gives > 0.99 success
        on the sizes we simulate, and the E12 ablation sweeps it.
    phase2_threshold_exponent:
        Phase 2 is executed when ``p <= n ** -phase2_threshold_exponent``;
        the paper uses ``2/5``.  Exposed for the E11 ablation.
    phase1_overshoot_factor:
        Finite-size refinement of the Phase-1 length.  The paper sets
        ``T = ⌊log n / log d⌋``; when ``log n / log d`` sits just above an
        integer, ``d^T`` is within a small factor of ``n``, Phase 1 already
        informs a constant fraction of all nodes, and the Phase-2 probability
        ``1/(d^T p) ≈ 1/d`` recruits too small an active pool for Phase 3
        (the paper's proof covers this corner only through its enormous
        constants ``c₁ = 16⁻⁴4⁻³`` etc.).  When ``d^T ≥ n / factor`` we
        therefore shorten Phase 1 by one round (never below one), which keeps
        both the O(log n) time and the ≤1-transmission invariant.  Set to 0
        to disable and use the paper's literal ``T``.
    dense_min_degree_factor:
        Finite-size refinement of the regime gate.  The paper's dense branch
        (skip Phase 2, Phase-3 probability ``1/(dp)``) relies on the Phase-3
        pool ``U_2`` of size ``≈ d`` giving every node ``≈ d·p = n p²``
        active neighbours, which must be ``Ω(log n)`` for the w.h.p.
        argument (Lemma 2.6, Case 2).  Asymptotically ``p > n^{-2/5}``
        implies ``n p² ≥ n^{1/5} ≫ log n``, but at laptop sizes it does not,
        so we additionally require ``n p² ≥ dense_min_degree_factor · log₂ n``
        before taking the dense branch.  Set to 0 to recover the paper's
        literal gate (the E11 ablation does).
    enable_phase2:
        Ablation switch (E11): when False, Phase 2 is skipped even in the
        sparse regime.
    """

    name = "algorithm1-energy-efficient-broadcast"

    def __init__(
        self,
        p: float,
        *,
        source: int = 0,
        beta: float = 8.0,
        phase2_threshold_exponent: float = 0.4,
        phase1_overshoot_factor: float = 2.0,
        dense_min_degree_factor: float = 2.0,
        enable_phase2: bool = True,
    ):
        super().__init__(source=source)
        self._init_algorithm1_params(
            p,
            beta=beta,
            phase2_threshold_exponent=phase2_threshold_exponent,
            phase1_overshoot_factor=phase1_overshoot_factor,
            dense_min_degree_factor=dense_min_degree_factor,
            enable_phase2=enable_phase2,
        )

        # Filled in at bind time (depend on n).
        self._status: Optional[np.ndarray] = None
        self.schedule: Optional[Algorithm1Schedule] = None
        self.T: int = 0
        self.d: float = 0.0
        self.phase2_round: Optional[int] = None
        self.phase3_start: int = 0
        self.phase3_rounds: int = 0
        self.phase3_probability: float = 0.0
        self.phase2_probability: float = 0.0
        self.run_metadata: Dict[str, object] = {}
        self._active_history: List[int] = []

    # ------------------------------------------------------------------ #
    # Setup
    # ------------------------------------------------------------------ #
    def _setup_broadcast(self) -> None:
        n = self.n
        schedule = self._compute_schedule(n)
        self.schedule = schedule
        self.d = schedule.d
        self.T = schedule.T
        self.phase2_round = schedule.phase2_round
        self.phase3_start = schedule.phase3_start
        self.phase3_rounds = schedule.phase3_rounds
        self.phase2_probability = schedule.phase2_probability
        self.phase3_probability = schedule.phase3_probability
        self._sparse_regime = schedule.sparse_regime

        self._status = np.full(n, _UNINFORMED, dtype=np.int8)
        self._status[self.source] = _ACTIVE
        self._active_history = []
        self.run_metadata = dict(schedule.metadata())
        self.run_metadata["active_history"] = self._active_history

    # ------------------------------------------------------------------ #
    # Round logic
    # ------------------------------------------------------------------ #
    def phase_of_round(self, round_index: int) -> str:
        """Which phase (``"phase1"``, ``"phase2"``, ``"phase3"``, ``"done"``) a round belongs to."""
        return self.schedule.phase_of_round(round_index)

    def transmit_mask(self, round_index: int) -> np.ndarray:
        """Who transmits this round.

        Phase-2/3 coin flips are drawn only for the currently *active* nodes
        (in ascending node-id order), not for all ``n`` nodes: late Phase-3
        rounds have a handful of active nodes, and full-width draws dominated
        the round cost.  This changes the RNG stream relative to older
        releases — the same seed now yields different (equally valid) runs.
        """
        status = self._status
        active = status == _ACTIVE
        self._active_history.append(int(active.sum()))
        phase = self.phase_of_round(round_index)
        if phase == "phase1":
            return active
        if phase in ("phase2", "phase3"):
            probability = (
                self.phase2_probability
                if phase == "phase2"
                else self.phase3_probability
            )
            mask = np.zeros(self.n, dtype=bool)
            idx = np.flatnonzero(active)
            if idx.size:
                draws = self.rng.random(idx.size)
                mask[idx[draws < probability]] = True
            return mask
        return np.zeros(self.n, dtype=bool)

    def observe(
        self,
        round_index: int,
        transmit_mask: np.ndarray,
        outcome: CollisionOutcome,
    ) -> None:
        phase = self.phase_of_round(round_index)
        status = self._status
        newly = self.mark_informed(outcome.receivers, round_index)

        if phase in ("phase1", "phase2"):
            # Every node that was active this round retires (it either
            # transmitted, or — in Phase 2 — consumed its single chance).
            status[status == _ACTIVE] = _PASSIVE
            # Nodes informed for the first time become active for the next round.
            if newly.size:
                status[newly] = _ACTIVE
        elif phase == "phase3":
            # Only nodes that actually transmitted retire; Phase-3 recruits
            # are informed but never become active (Algorithm 1, Phase 3).
            tx = np.asarray(transmit_mask, dtype=bool)
            status[tx & (status == _ACTIVE)] = _PASSIVE
            if newly.size:
                # mark_informed only returns previously uninformed nodes, so
                # these go straight to passive (informed, never active).
                status[newly] = _PASSIVE

    # ------------------------------------------------------------------ #
    # Introspection used by the experiments
    # ------------------------------------------------------------------ #
    def active_count(self) -> int:
        """Number of currently active nodes."""
        return int((self._status == _ACTIVE).sum())

    @property
    def active_history(self) -> List[int]:
        """``|U_t|`` — the number of active nodes at the start of each round."""
        return list(self._active_history)

    def is_quiescent(self, round_index: int) -> bool:
        # The schedule has a hard end (Phase 3's last round) and the active
        # pool only shrinks once Phase 3 starts, so either condition below is
        # absorbing.
        if round_index >= self.phase3_start + self.phase3_rounds:
            return True
        return self.active_count() == 0

    def suggested_max_rounds(self) -> int:
        return self.phase3_start + self.phase3_rounds + 1

    def is_complete(self) -> bool:
        # The run is over either when everyone is informed or when the
        # protocol has exhausted its schedule (it never transmits again).
        return bool(self.informed.all())

    def __repr__(self) -> str:
        return (
            f"EnergyEfficientBroadcast(p={self.p}, source={self.source}, "
            f"beta={self.beta}, enable_phase2={self.enable_phase2})"
        )


class BatchEnergyEfficientBroadcast(_Algorithm1Params, BatchBroadcastProtocol):
    """Batched Algorithm 1: ``R`` trials advance through the phases together.

    Same parameters and phase logic as :class:`EnergyEfficientBroadcast`
    (both derive their round behaviour from the one
    :class:`Algorithm1Schedule`).  The phase of a round depends only on the
    round index, so all trials are always in the same phase and one
    vectorised update advances everyone.

    The active pool is kept *sparse* — a sorted array of flat node ids
    (``trial * n + node``) plus per-trial counts — because after Phase 1 only
    a vanishing fraction of the ``R x n`` state is active: a Phase-3 round
    then costs O(active + transmissions), not O(R n), which is where the
    batch engine's throughput comes from.

    In the exact-equivalence rng mode the Phase-2/3 coin flips are drawn one
    trial at a time from that trial's generator, matching the serial
    protocol's active-only ``rng.random(active_count)`` call (uniforms land
    on active nodes in ascending id order in both implementations) — batched
    runs are then bit-identical to serial runs of the same per-trial seeds.
    """

    name = EnergyEfficientBroadcast.name

    def __init__(
        self,
        p: float,
        *,
        source: int = 0,
        beta: float = 8.0,
        phase2_threshold_exponent: float = 0.4,
        phase1_overshoot_factor: float = 2.0,
        dense_min_degree_factor: float = 2.0,
        enable_phase2: bool = True,
    ):
        super().__init__(source=source)
        self._init_algorithm1_params(
            p,
            beta=beta,
            phase2_threshold_exponent=phase2_threshold_exponent,
            phase1_overshoot_factor=phase1_overshoot_factor,
            dense_min_degree_factor=dense_min_degree_factor,
            enable_phase2=enable_phase2,
        )
        self.schedule: Optional[Algorithm1Schedule] = None
        self._active_flat: Optional[np.ndarray] = None
        self._active_count: Optional[np.ndarray] = None
        self._history_log: List[tuple] = []
        self._phase3_ids: Optional[np.ndarray] = None
        self._phase3_offsets: Optional[np.ndarray] = None
        self._phase3_first_round: int = 0

    def _setup_broadcast(self) -> None:
        trials, n = self.trials, self.n
        self.schedule = self._compute_schedule(n)
        self._active_flat = (
            np.arange(trials, dtype=np.int64) * n + self.source
        )
        self._active_count = np.ones(trials, dtype=np.int64)
        # (running, active_count) snapshots per round; materialised into
        # per-trial histories on demand so the round loop stays array-only.
        self._history_log = []
        self._phase3_ids = None
        self._phase3_offsets = None

    # ------------------------------------------------------------------ #
    # Round logic (mirrors the serial class on the sparse active pool)
    # ------------------------------------------------------------------ #
    def transmit_flat(self, round_index: int, running: np.ndarray) -> np.ndarray:
        counts = self._active_count
        self._history_log.append((running, counts.copy()))
        phase = self.schedule.phase_of_round(round_index)
        if phase == "phase3" and not self.rng_source.exact_mode:
            if self._phase3_ids is None:
                self._presample_phase3(round_index)
            return self._phase3_bucket(round_index, running)
        active = self._active_flat
        if active.size:
            keep = running[active // self.n]
            gated = active if keep.all() else active[keep]
        else:
            gated = active
        if phase == "phase1":
            return gated
        if phase in ("phase2", "phase3") and gated.size:
            probability = (
                self.schedule.phase2_probability
                if phase == "phase2"
                else self.schedule.phase3_probability
            )
            # Per-trial draw counts mirror the serial rng.random(active_count)
            # call; `gated` is trial-major ascending, matching the serial
            # assignment of uniforms to active nodes in ascending id order.
            draw_counts = np.where(running, counts, 0)
            draws = self.rng_source.uniforms_for_counts(draw_counts)
            return gated[draws < probability]
        return active[:0]

    def _presample_phase3(self, start_round: int) -> None:
        """Fast-mode Phase 3: pre-sample every node's transmission round.

        A Phase-3 node transmits with probability ``q`` each round until it
        does, then retires — so its (unique) transmission round is
        ``start + Geometric(q) - 1``, and the whole phase's schedule can be
        drawn in one vectorised call the moment the pool is fixed (recruits
        never join the pool).  The per-round loop then just slices the next
        bucket instead of drawing and compressing the active pool every
        round.  The process is distributed *identically* to the per-round
        coin flips; only the RNG stream differs, which is why the
        exact-equivalence mode keeps the per-round path.
        """
        pool = self._active_flat
        q = self.schedule.phase3_probability
        end_round = self.schedule.phase3_start + self.schedule.phase3_rounds
        tx_round = (
            start_round
            + self.rng_source.generator.geometric(q, size=pool.size)
            - 1
        )
        scheduled = tx_round < end_round
        order = np.argsort(tx_round[scheduled], kind="stable")
        self._phase3_ids = pool[scheduled][order]
        rounds_sorted = tx_round[scheduled][order]
        self._phase3_offsets = np.searchsorted(
            rounds_sorted, np.arange(start_round, end_round + 1)
        )
        self._phase3_first_round = start_round

    def presampled_schedule(
        self, round_index: int
    ) -> Optional[ScheduledTransmissions]:
        """Commit to the fast-mode Phase-3 schedule the moment it is fixed.

        Recruits never join the Phase-3 pool and each pool node's (unique)
        transmission round is pre-sampled, so from the first Phase-3 round on
        every future transmitter is known and the engine can resolve all
        remaining rounds in one chunked mega-gather.
        """
        if self.rng_source.exact_mode:
            return None
        if self.schedule.phase_of_round(round_index) != "phase3":
            return None
        if self._phase3_ids is None:
            self._presample_phase3(round_index)
        return ScheduledTransmissions(
            tx_flat=self._phase3_ids,
            offsets=self._phase3_offsets,
            first_round=self._phase3_first_round,
        )

    def _phase3_bucket(self, round_index: int, running: np.ndarray) -> np.ndarray:
        lo = self._phase3_offsets[round_index - self._phase3_first_round]
        hi = self._phase3_offsets[round_index - self._phase3_first_round + 1]
        bucket = self._phase3_ids[lo:hi]
        if bucket.size and not running.all():
            bucket = bucket[running[bucket // self.n]]
        return bucket

    def observe(
        self,
        round_index: int,
        tx_flat: np.ndarray,
        outcome: BatchCollisionOutcome,
        running: np.ndarray,
    ) -> None:
        phase = self.schedule.phase_of_round(round_index)
        newly_flat = self.mark_informed(outcome.receiver_flat, round_index)
        n, trials = self.n, self.trials

        if phase in ("phase1", "phase2"):
            # Every active node of a running trial retires (it either
            # transmitted, or — in Phase 2 — consumed its single chance);
            # nodes informed for the first time become active next round.
            # Receivers only exist in running trials, so the new pool is
            # exactly the newly informed set.
            self._active_flat = np.sort(newly_flat)
            self._active_count = np.bincount(
                self._active_flat // n, minlength=trials
            )
        elif phase == "phase3" and tx_flat.size:
            # Only nodes that actually transmitted retire; Phase-3 recruits
            # are informed but never become active (Algorithm 1, Phase 3).
            if self._phase3_ids is None:
                # Per-round path (exact mode): the transmitters are a sorted
                # subset of the (sorted, unique) active pool, so one
                # searchsorted with the *small* array as the needle locates
                # every retiree.
                active = self._active_flat
                keep = np.ones(active.size, dtype=bool)
                keep[np.searchsorted(active, tx_flat)] = False
                self._active_flat = active[keep]
            # Pre-sampled path: retirements are already encoded in the
            # schedule buckets; only the per-trial counts need updating.
            self._active_count = self._active_count - np.bincount(
                tx_flat // n, minlength=trials
            )

    def _compact_broadcast(self, keep: np.ndarray) -> None:
        n = self.n  # new (compacted) batch is already bound
        alive, new_ids = _remap_flat_pool(self._active_flat, keep, n)
        self._active_flat = new_ids
        self._active_count = self._active_count[keep].copy()
        # History snapshots predate the compaction, so they row-select with
        # the same keep mask (entries appended later are already compact).
        self._history_log = [
            (running[keep], counts[keep]) for running, counts in self._history_log
        ]
        if self._phase3_ids is not None:
            p3_alive, p3_ids = _remap_flat_pool(self._phase3_ids, keep, n)
            self._phase3_ids = p3_ids
            # Bucket offsets shift down by the number of removed entries
            # before them; removal preserves the by-round ordering.
            removed = np.concatenate(
                ([0], np.cumsum(~p3_alive, dtype=np.int64))
            )
            self._phase3_offsets = self._phase3_offsets - removed[
                self._phase3_offsets
            ]

    # ------------------------------------------------------------------ #
    # Engine hooks / introspection
    # ------------------------------------------------------------------ #
    def active_counts(self) -> np.ndarray:
        """Per-trial number of currently active nodes."""
        return self._active_count.copy()

    def active_history(self, trial: int) -> List[int]:
        """``|U_t|`` per round for one trial (serial ``active_history``)."""
        return [
            int(counts[trial])
            for running, counts in self._history_log
            if running[trial]
        ]

    def quiescent(self, round_index: int) -> np.ndarray:
        if round_index >= self.schedule.phase3_start + self.schedule.phase3_rounds:
            return np.ones(self.trials, dtype=bool)
        return self._active_count == 0

    def suggested_max_rounds(self) -> int:
        return self.schedule.phase3_start + self.schedule.phase3_rounds + 1

    def trial_metadata(self, trial: int) -> Dict[str, object]:
        meta = dict(self.schedule.metadata())
        meta["active_history"] = self.active_history(trial)
        return meta

    def __repr__(self) -> str:
        return (
            f"BatchEnergyEfficientBroadcast(p={self.p}, source={self.source}, "
            f"beta={self.beta}, enable_phase2={self.enable_phase2})"
        )
