"""The oblivious, time-invariant protocol class used by the lower bounds.

Section 4.2 quantifies over oblivious broadcast algorithms in which every
node uses the *same* probability distribution — independent of time — to
decide whether to transmit in a round.  :class:`TimeInvariantBroadcast` is
the executable form of that class:

* at every round a shared probability ``q_r`` is drawn from a fixed
  :class:`~repro.core.distributions.ScaleDistribution` (the degenerate
  :class:`~repro.core.distributions.FixedProbabilityOblivious` gives a
  constant ``q``);
* every informed node (optionally: only within a bounded active window)
  transmits independently with probability ``q_r``.

Experiments E7 (Observation 4.3) and E8 (Theorem 4.4) sweep either the
constant ``q`` or the distribution's mean and measure, on the lower-bound
networks, how many transmissions are needed to reach the ``1 - 1/n`` success
target within a given time budget — reproducing the lower-bound frontier the
theorems prove.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro._util.validation import check_positive_int
from repro.core.distributions import FixedProbabilityOblivious, ScaleDistribution
from repro.radio.batch import BatchBroadcastProtocol
from repro.radio.protocol import BroadcastProtocol

__all__ = ["TimeInvariantBroadcast", "BatchTimeInvariantBroadcast"]


def _coerce_distribution(distribution) -> ScaleDistribution:
    """Accept a ScaleDistribution or a float ``q`` shorthand (shared check)."""
    if isinstance(distribution, (int, float)) and not isinstance(distribution, bool):
        distribution = FixedProbabilityOblivious(float(distribution))
    if not isinstance(distribution, ScaleDistribution):
        raise TypeError(
            "distribution must be a ScaleDistribution or a float probability, "
            f"got {type(distribution).__name__}"
        )
    return distribution


class TimeInvariantBroadcast(BroadcastProtocol):
    """Oblivious broadcast with a time-invariant transmission distribution.

    Parameters
    ----------
    distribution:
        Either a :class:`ScaleDistribution` (the shared per-round probability
        is ``2^{-I_r}`` with ``I_r`` drawn from it) or a plain float ``q``
        (shorthand for :class:`FixedProbabilityOblivious`).
    active_window:
        Optional number of rounds a node participates after being informed
        (``None`` = forever).  The lower-bound theorems let nodes stay active
        forever; bounding the window is how E8 converts the frontier into a
        transmissions-per-node number.
    source:
        Broadcast originator.
    """

    name = "time-invariant-oblivious-broadcast"

    def __init__(
        self,
        distribution,
        *,
        active_window: Optional[int] = None,
        source: int = 0,
    ):
        super().__init__(source=source)
        self.distribution = _coerce_distribution(distribution)
        if active_window is not None:
            active_window = check_positive_int(active_window, "active_window")
        self.active_window = active_window
        self.run_metadata: Dict[str, object] = {}

    def _setup_broadcast(self) -> None:
        self.run_metadata = {
            "distribution": self.distribution.name,
            "mean_transmission_probability": self.distribution.mean_transmission_probability(),
            "active_window": self.active_window,
        }

    def _shared_probability(self) -> float:
        if isinstance(self.distribution, FixedProbabilityOblivious):
            return self.distribution.per_round_probability()
        return float(self.distribution.sample_probabilities(1, rng=self.rng)[0])

    def transmit_mask(self, round_index: int) -> np.ndarray:
        eligible = self.informed
        if self.active_window is not None:
            eligible = eligible & (
                round_index < self.informed_round + self.active_window
            )
        if not eligible.any():
            return np.zeros(self.n, dtype=bool)
        probability = self._shared_probability()
        draws = self.rng.random(self.n) < probability
        return eligible & draws

    def is_quiescent(self, round_index: int) -> bool:
        if self.active_window is None:
            return self.is_complete()
        eligible = self.informed & (
            round_index < self.informed_round + self.active_window
        )
        return not bool(eligible.any())

    def suggested_max_rounds(self) -> int:
        import math

        log_n = max(1.0, math.log2(max(2, self.n)))
        mean_q = max(self.distribution.mean_transmission_probability(), 1e-9)
        return int(math.ceil(64 * (self.n + log_n) / mean_q))


class BatchTimeInvariantBroadcast(BatchBroadcastProtocol):
    """Batched :class:`TimeInvariantBroadcast`: ``R`` oblivious trials per round.

    Each trial draws its own shared per-round probability (one scale draw)
    followed by its ``n`` node coins.  In exact mode both draws come from the
    trial's own generator in the serial order (and are skipped entirely for
    trials with no eligible node), so batched runs are bit-identical to
    serial ones; in fast mode the round's ``R`` scale draws collapse into one
    call on the shared generator.
    """

    name = TimeInvariantBroadcast.name

    def __init__(
        self,
        distribution,
        *,
        active_window: Optional[int] = None,
        source: int = 0,
    ):
        super().__init__(source=source)
        self.distribution = _coerce_distribution(distribution)
        if active_window is not None:
            active_window = check_positive_int(active_window, "active_window")
        self.active_window = active_window

    def _eligible_masks(self, round_index: int) -> np.ndarray:
        eligible = self.informed
        if self.active_window is not None:
            eligible = eligible & (
                round_index < self.informed_round + self.active_window
            )
        return eligible

    def transmit_masks(self, round_index: int, running: np.ndarray) -> np.ndarray:
        trials, n = self.trials, self.n
        eligible = self._eligible_masks(round_index)
        masks = np.zeros((trials, n), dtype=bool)
        fixed = isinstance(self.distribution, FixedProbabilityOblivious)
        if self.rng_source.exact_mode:
            for t in np.flatnonzero(running):
                if not eligible[t].any():
                    continue
                generator = self.rng_source.generator_for_trial(t)
                if fixed:
                    probability = self.distribution.per_round_probability()
                else:
                    probability = float(
                        self.distribution.sample_probabilities(1, rng=generator)[0]
                    )
                draws = generator.random(n)
                masks[t] = eligible[t] & (draws < probability)
            return masks
        if fixed:
            probabilities = np.full(
                trials, self.distribution.per_round_probability()
            )
        else:
            probabilities = self.distribution.sample_probabilities(
                trials, rng=self.rng_source.generator
            )
        rows = np.flatnonzero(running)
        if rows.size:
            draws = self.rng_source.uniform_rows(running, n)
            masks[rows] = eligible[rows] & (draws < probabilities[rows, None])
        return masks

    def quiescent(self, round_index: int) -> np.ndarray:
        if self.active_window is None:
            return self.completed()
        return ~self._eligible_masks(round_index).any(axis=1)

    def suggested_max_rounds(self) -> int:
        import math

        log_n = max(1.0, math.log2(max(2, self.n)))
        mean_q = max(self.distribution.mean_transmission_probability(), 1e-9)
        return int(math.ceil(64 * (self.n + log_n) / mean_q))

    def trial_metadata(self, trial: int) -> Dict[str, object]:
        return {
            "distribution": self.distribution.name,
            "mean_transmission_probability": self.distribution.mean_transmission_probability(),
            "active_window": self.active_window,
        }
