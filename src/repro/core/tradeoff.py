"""The Theorem 4.2 time/energy tradeoff family.

Theorem 4.2: for any ``λ`` with ``log(n/D) ≤ λ ≤ log n``, running Algorithm 3
with the distribution ``α`` built for that larger ``λ`` finishes
broadcasting in ``O(D λ + log² n)`` rounds w.h.p. using an expected
``O(log² n / λ)`` transmissions per node.

The two endpoints of the family:

* ``λ = log(n/D)`` — Algorithm 3 itself: optimal time
  ``O(D log(n/D) + log² n)`` and ``O(log² n / log(n/D))`` energy;
* ``λ = log n`` — slowest / cheapest: ``O(D log n + log² n)`` time but only
  ``O(log n)`` transmissions per node.

E6 sweeps λ across the admissible range on a fixed network and plots the
measured (time, energy) frontier.
"""

from __future__ import annotations

import math

from repro._util.logmath import lambda_of
from repro._util.validation import check_positive
from repro.core.broadcast_general import (
    BatchKnownDiameterBroadcast,
    KnownDiameterBroadcast,
)
from repro.core.distributions import AlphaDistribution

__all__ = ["TradeoffBroadcast", "BatchTradeoffBroadcast", "admissible_lambda_range"]


def admissible_lambda_range(n: int, diameter: int) -> tuple:
    """The Theorem 4.2 range ``[log(n/D), log n]`` for λ (floats, clamped)."""
    low = lambda_of(n, diameter)
    high = max(low, math.log2(max(2, n)))
    return (low, high)


def _install_tradeoff_distribution(proto) -> float:
    """Clamp the requested λ and install its α distribution; shared by the
    serial and batched classes so the two cannot drift apart."""
    low, high = admissible_lambda_range(proto.n, proto.diameter)
    lam = float(min(max(proto.requested_lam, low), high))
    proto._distribution_override = AlphaDistribution(
        proto.n, proto.diameter, lam=lam
    )
    return lam


def _tradeoff_round_budget(proto, lam: float) -> int:
    """The horizon covering the slower D*λ regime of the theorem."""
    log_n = max(1.0, math.log2(proto.n))
    return int(
        math.ceil(proto.round_budget_constant * (proto.diameter * lam + log_n**2))
    )


class TradeoffBroadcast(KnownDiameterBroadcast):
    """Algorithm 3 run with a caller-chosen λ (Theorem 4.2).

    Parameters
    ----------
    diameter:
        Known diameter ``D``.
    lam:
        The tradeoff parameter λ; values outside
        ``[log(n/D), log n]`` are clamped at bind time (the theorem only
        covers that range).
    Other parameters are forwarded to
    :class:`~repro.core.broadcast_general.KnownDiameterBroadcast`.
    """

    name = "theorem42-tradeoff-broadcast"

    def __init__(
        self,
        diameter: int,
        lam: float,
        *,
        source: int = 0,
        beta: float = 2.0,
        round_budget_constant: float = 24.0,
    ):
        super().__init__(
            diameter,
            source=source,
            beta=beta,
            round_budget_constant=round_budget_constant,
        )
        self.requested_lam = check_positive(lam, "lam")

    def _setup_broadcast(self) -> None:
        # Install the λ-specific distribution before the parent wires up the
        # selection sequence and the window/horizon arithmetic.
        lam = _install_tradeoff_distribution(self)
        super()._setup_broadcast()
        self.lam = lam
        self.run_metadata["lambda"] = lam
        self.run_metadata["requested_lambda"] = self.requested_lam
        self.round_budget = _tradeoff_round_budget(self, lam)
        self.run_metadata["round_budget"] = self.round_budget


class BatchTradeoffBroadcast(BatchKnownDiameterBroadcast):
    """Batched :class:`TradeoffBroadcast` (Theorem 4.2 with caller-chosen λ)."""

    name = TradeoffBroadcast.name

    def __init__(
        self,
        diameter: int,
        lam: float,
        *,
        source: int = 0,
        beta: float = 2.0,
        round_budget_constant: float = 24.0,
    ):
        super().__init__(
            diameter,
            source=source,
            beta=beta,
            round_budget_constant=round_budget_constant,
        )
        self.requested_lam = check_positive(lam, "lam")

    def _setup_broadcast(self) -> None:
        lam = _install_tradeoff_distribution(self)
        super()._setup_broadcast()
        self.lam = lam
        self.round_budget = _tradeoff_round_budget(self, lam)

    def trial_metadata(self, trial: int) -> dict:
        meta = super().trial_metadata(trial)
        meta["lambda"] = self.lam
        meta["requested_lambda"] = self.requested_lam
        return meta
