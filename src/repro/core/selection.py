"""Selection sequences: shared per-round transmission probabilities.

Algorithm 3 (and the Czumaj–Rytter baselines) are *oblivious* protocols that
nevertheless coordinate through public randomness: before the run, a random
sequence ``I = <I_1, I_2, …>`` of scales is drawn from a fixed distribution,
and in round ``r`` every active node transmits independently with probability
``2^{-I_r}``.  The sequence depends only on ``n`` (and ``D``), never on the
topology, so the protocol remains oblivious; sharing it costs nothing because
it can be derived from a common pseudo-random seed.

:class:`SelectionSequence` materialises such a sequence lazily in blocks so a
protocol can ask for ``probability_at(r)`` for arbitrary ``r`` without
knowing the horizon in advance.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro._util.rng import SeedLike, as_generator
from repro._util.validation import check_positive_int
from repro.core.distributions import ScaleDistribution

__all__ = ["SelectionSequence"]


class SelectionSequence:
    """Lazily materialised sequence of per-round scales and probabilities.

    Parameters
    ----------
    distribution:
        The scale distribution to draw from.
    rng:
        Seed or generator for the public randomness.
    block_size:
        How many rounds to materialise at a time.
    """

    def __init__(
        self,
        distribution: ScaleDistribution,
        *,
        rng: SeedLike = None,
        block_size: int = 1024,
    ):
        self.distribution = distribution
        self._rng = as_generator(rng)
        self._block_size = check_positive_int(block_size, "block_size")
        self._scales = np.empty(0, dtype=np.int64)
        self._probabilities = np.empty(0, dtype=float)

    def _ensure(self, round_index: int) -> None:
        while round_index >= self._scales.size:
            fresh = self.distribution.sample_scales(self._block_size, rng=self._rng)
            self._scales = np.concatenate([self._scales, fresh])
            self._probabilities = np.concatenate(
                [self._probabilities, np.power(2.0, -fresh.astype(float))]
            )

    def scale_at(self, round_index: int) -> int:
        """The public scale ``I_r`` for round ``round_index`` (0-based)."""
        if round_index < 0:
            raise ValueError("round_index must be non-negative")
        self._ensure(round_index)
        return int(self._scales[round_index])

    def probability_at(self, round_index: int) -> float:
        """The shared transmission probability ``2^{-I_r}`` for the round."""
        if round_index < 0:
            raise ValueError("round_index must be non-negative")
        self._ensure(round_index)
        return float(self._probabilities[round_index])

    def prefix(self, length: int) -> np.ndarray:
        """The first ``length`` scales as an array."""
        length = check_positive_int(length, "length", minimum=0)
        if length == 0:
            return np.empty(0, dtype=np.int64)
        self._ensure(length - 1)
        return self._scales[:length].copy()

    def __repr__(self) -> str:
        return (
            f"SelectionSequence(distribution={self.distribution.name!r}, "
            f"materialised={self._scales.size})"
        )
