"""Transmission-scale distributions (the paper's Fig. 1).

Selection-sequence broadcasting algorithms (Algorithm 3, the Czumaj–Rytter
baselines, the Theorem 4.2 family) work with *scales*: in round ``r`` a
public random scale ``I_r ∈ {0, 1, …, log n}`` is drawn from a fixed
distribution and every active node transmits with probability ``2^{-I_r}``.
The distribution over scales is the whole design space; the paper's
contribution in Section 4 is a new distribution ``α`` whose two structural
properties drive Theorem 4.1:

``floor``
    every scale has probability at least ``≈ 1/(2 log n)``, so an uninformed
    node with *any* number ``m`` of active in-neighbours is hit at the right
    scale (``2^k ≈ m``) with probability ``Ω(1/log n)`` per round — an active
    window of ``O(log² n)`` rounds then suffices w.h.p.;

``energy``
    the expected transmission probability ``E[2^{-I}]`` is ``Θ(1/λ)`` with
    ``λ = log(n/D)``, so each active round costs only ``O(1/λ)`` expected
    transmissions — ``O(log² n / λ)`` per node over the whole window.

The Czumaj–Rytter distribution ``α′`` (their Section 4.1) satisfies the
energy property but **not** the floor: mass on the large scales decays
geometrically, so per-neighbour success at scale ``k`` costs
``Ω(2^{k-λ})`` more rounds, which is why converting their algorithm to a
bounded-energy one needs an active window longer by a ``log(n/D)`` factor
(and hence ``Θ(log² n)`` transmissions per node).

The exact constants in the paper's Fig. 1 are immaterial (the theorems hide
them in O(·)); what we implement and test are the two structural properties
above and the inequalities the proofs actually use:
``1/(2 log n) ≲ α_k``, ``α_k ≥ α'_k / 2`` and ``α_k ≥ (1/2λ)·2^{-(k-λ)}``
for ``k > λ``.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from repro._util.logmath import lambda_of
from repro._util.rng import SeedLike, as_generator
from repro._util.validation import check_positive_int, check_probability

__all__ = [
    "ScaleDistribution",
    "AlphaDistribution",
    "CzumajRytterDistribution",
    "UniformScaleDistribution",
    "FixedProbabilityOblivious",
]


class ScaleDistribution:
    """A fixed (time-invariant) probability distribution over scales ``0..K``.

    Parameters
    ----------
    weights:
        Non-negative, not necessarily normalised weights; index ``k`` is the
        scale whose transmission probability is ``2^{-k}``.
    name:
        Label used in tables.
    """

    def __init__(self, weights: Sequence[float], *, name: str = "scale-distribution"):
        weights = np.asarray(weights, dtype=float)
        if weights.ndim != 1 or weights.size == 0:
            raise ValueError("weights must be a non-empty 1-D sequence")
        if np.any(weights < 0) or not np.all(np.isfinite(weights)):
            raise ValueError("weights must be finite and non-negative")
        total = float(weights.sum())
        if total <= 0:
            raise ValueError("weights must have positive total mass")
        self._probabilities = weights / total
        self._probabilities.setflags(write=False)
        self.name = str(name)

    # ------------------------------------------------------------------ #
    @property
    def probabilities(self) -> np.ndarray:
        """Normalised probability of each scale (read-only array)."""
        return self._probabilities

    @property
    def num_scales(self) -> int:
        """Number of scales (``K + 1``)."""
        return int(self._probabilities.size)

    @property
    def max_scale(self) -> int:
        """Largest scale ``K``."""
        return int(self._probabilities.size - 1)

    def probability_of_scale(self, k: int) -> float:
        """``Pr[I = k]``."""
        if not 0 <= k <= self.max_scale:
            raise ValueError(f"scale must lie in [0, {self.max_scale}], got {k}")
        return float(self._probabilities[k])

    def mean_transmission_probability(self) -> float:
        """``E[2^{-I}]`` — the expected per-round transmission probability.

        This is the paper's ``µ`` (mean of the distribution) from the proof of
        Theorem 4.4: an active node spends ``µ`` expected transmissions per
        round.
        """
        scales = np.arange(self.num_scales)
        return float(np.sum(self._probabilities * np.power(2.0, -scales)))

    def min_scale_probability(self) -> float:
        """``min_k Pr[I = k]`` over the scales the distribution actually plays.

        Zero-weight scales (e.g. scale 0, which none of the paper's
        distributions uses) are excluded — this is the "floor" that drives
        Theorem 4.1.
        """
        positive = self._probabilities[self._probabilities > 0]
        return float(positive.min())

    def sample_scales(self, count: int, rng: SeedLike = None) -> np.ndarray:
        """Draw ``count`` i.i.d. scales (a selection sequence prefix)."""
        count = check_positive_int(count, "count", minimum=0)
        generator = as_generator(rng)
        if count == 0:
            return np.empty(0, dtype=np.int64)
        return generator.choice(self.num_scales, size=count, p=self._probabilities)

    def sample_probabilities(self, count: int, rng: SeedLike = None) -> np.ndarray:
        """Draw ``count`` per-round transmission probabilities ``2^{-I_r}``."""
        return np.power(2.0, -self.sample_scales(count, rng).astype(float))

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r}, scales={self.num_scales})"


class AlphaDistribution(ScaleDistribution):
    """The paper's distribution ``α`` (Fig. 1) for known diameter ``D``.

    Construction (scales ``k = 1 .. K`` with ``K = ceil(log2 n)``; scale 0 is
    unused, i.e. nodes never transmit with probability 1): every scale gets
    the uniform floor ``1/(2 log n)`` plus a λ-dependent bump,

    * ``k <= λ``:  weight ``1/(2 log n)  +  1 / (4 λ)``;
    * ``k  > λ``:  weight ``1/(2 log n)  +  (1 / (4 λ)) · 2^{-(k - λ)}``.

    The weights are then normalised.  The unnormalised total is
    ``1/2 + Θ(1/4)`` for every λ, so normalisation changes each value by a
    bounded, nearly λ-independent constant; the structural properties —
    floor of ``Ω(1/log n)`` on every scale, mean ``Θ(1/λ)`` that is
    (weakly) decreasing in λ — are preserved and are what the tests assert.

    Parameters
    ----------
    n:
        Network size (every node knows ``n``).
    diameter:
        Known diameter ``D``.
    lam:
        Optional override of ``λ`` (defaults to ``log2(n / D)``, clamped to
        ``[1, log2 n]``); the Theorem 4.2 tradeoff family passes larger λ.
    """

    def __init__(self, n: int, diameter: int, *, lam: Optional[float] = None):
        n = check_positive_int(n, "n", minimum=2)
        diameter = check_positive_int(diameter, "diameter")
        log_n = max(1.0, math.log2(n))
        if lam is None:
            lam = lambda_of(n, diameter)
        lam = float(min(max(lam, 1.0), log_n))
        max_scale = max(1, int(math.ceil(log_n)))

        weights = np.zeros(max_scale + 1, dtype=float)
        for k in range(1, max_scale + 1):
            floor = 1.0 / (2.0 * log_n)
            if k <= lam:
                bump = 1.0 / (4.0 * lam)
            else:
                bump = (1.0 / (4.0 * lam)) * 2.0 ** (-(k - lam))
            weights[k] = floor + bump
        super().__init__(weights, name=f"alpha(n={n}, D={diameter}, lambda={lam:.3g})")
        self.n = n
        self.diameter = diameter
        self.lam = lam
        self.log_n = log_n


class CzumajRytterDistribution(ScaleDistribution):
    """The Czumaj–Rytter distribution ``α′`` (their Section 4.1, Fig. 1 right).

    Same geometric tail as ``α`` but **without** the ``1/(2 log n)`` floor:

    * ``k <= λ``: weight ``1 / (2 λ)``;
    * ``k  > λ``: weight ``(1 / (2 λ)) · 2^{-(k - λ)}``.

    Normalised.  The paper's inequality ``α_k >= α'_k / 2`` holds scale-wise
    for the unnormalised weights and, up to the bounded normalisation
    constants, for the probabilities as well (asserted in the tests with the
    appropriate constant slack).
    """

    def __init__(self, n: int, diameter: int, *, lam: Optional[float] = None):
        n = check_positive_int(n, "n", minimum=2)
        diameter = check_positive_int(diameter, "diameter")
        log_n = max(1.0, math.log2(n))
        if lam is None:
            lam = lambda_of(n, diameter)
        lam = float(min(max(lam, 1.0), log_n))
        max_scale = max(1, int(math.ceil(log_n)))

        weights = np.zeros(max_scale + 1, dtype=float)
        for k in range(1, max_scale + 1):
            if k <= lam:
                weights[k] = 1.0 / (2.0 * lam)
            else:
                weights[k] = (1.0 / (2.0 * lam)) * 2.0 ** (-(k - lam))
        super().__init__(
            weights, name=f"alpha_prime(n={n}, D={diameter}, lambda={lam:.3g})"
        )
        self.n = n
        self.diameter = diameter
        self.lam = lam
        self.log_n = log_n


class UniformScaleDistribution(ScaleDistribution):
    """Uniform distribution over scales ``1 .. ceil(log2 n)``.

    The classic unknown-topology selection-sequence choice (used by the
    Bar-Yehuda-style baselines and by our unknown-diameter baseline): every
    scale is equally likely, so the floor property holds with constant
    ``1/log n`` but the mean transmission probability is ``Θ(1/log n)``
    rather than ``Θ(1/λ)`` — more energy-hungry when ``D`` is large.
    """

    def __init__(self, n: int):
        n = check_positive_int(n, "n", minimum=2)
        max_scale = max(1, int(math.ceil(math.log2(n))))
        weights = np.zeros(max_scale + 1, dtype=float)
        weights[1:] = 1.0
        super().__init__(weights, name=f"uniform-scales(n={n})")
        self.n = n
        self.log_n = float(max_scale)


class FixedProbabilityOblivious(ScaleDistribution):
    """A degenerate time-invariant distribution: always transmit w.p. ``q``.

    This is the simplest member of the class of protocols the lower bounds
    (Observation 4.3, Theorem 4.4) quantify over: every node uses the same
    per-round send probability ``q`` in every round.  It is represented on a
    two-point scale grid ``{q, 0}`` so it can plug into the same
    selection-sequence machinery; :meth:`per_round_probability` exposes ``q``
    directly for protocols that bypass scales.
    """

    def __init__(self, q: float):
        q = check_probability(q, "q", allow_zero=False)
        # Single "scale" whose transmission probability is exactly q.
        super().__init__([1.0], name=f"fixed(q={q:.4g})")
        self._q = q

    def per_round_probability(self) -> float:
        """The constant per-round transmission probability ``q``."""
        return self._q

    def mean_transmission_probability(self) -> float:
        return self._q

    def sample_probabilities(self, count: int, rng: SeedLike = None) -> np.ndarray:
        count = check_positive_int(count, "count", minimum=0)
        return np.full(count, self._q, dtype=float)
