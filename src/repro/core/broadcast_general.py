"""Algorithm 3 — energy-efficient broadcasting with known diameter.

Theorem 4.1: on an arbitrary network whose diameter ``D`` is known to all
nodes, the following oblivious protocol completes broadcasting in
``O(D log(n/D) + log² n)`` rounds w.h.p. with an expected
``O(log² n / log(n/D))`` transmissions per node:

1. draw a public random selection sequence ``I = <I_1, I_2, …>`` with
   ``Pr[I_r = k] = α_k`` (the distribution of Fig. 1 /
   :class:`~repro.core.distributions.AlphaDistribution`);
2. a node ``u`` becomes *active* when it first receives the message (the
   source is active from the start); let ``t_u`` be that round;
3. while ``r ≤ t_u + β log² n``, an active ``u`` transmits with probability
   ``2^{-I_r}``; afterwards it becomes passive forever.

The same class also powers two baselines/ablations by swapping the
distribution and the active-window length:

* the energy-bounded Czumaj–Rytter baseline
  (:class:`repro.baselines.czumaj_rytter.KnownDiameterCR`) uses ``α′`` and a
  window longer by a factor ``log(n/D)`` — the transformation described in
  the opening of Section 4;
* the Theorem 4.2 tradeoff family
  (:class:`repro.core.tradeoff.TradeoffBroadcast`) passes a larger ``λ`` to
  the ``α`` construction.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

import numpy as np

from repro._util.logmath import lambda_of
from repro._util.validation import check_positive, check_positive_int
from repro.core.distributions import AlphaDistribution, ScaleDistribution
from repro.core.selection import SelectionSequence
from repro.radio.batch import BatchBroadcastProtocol
from repro.radio.collision import CollisionOutcome
from repro.radio.protocol import BroadcastProtocol

__all__ = ["KnownDiameterBroadcast", "BatchKnownDiameterBroadcast"]


class KnownDiameterBroadcast(BroadcastProtocol):
    """Algorithm 3 of the paper (and the engine behind its variants).

    Parameters
    ----------
    diameter:
        The known network diameter ``D``.
    source:
        Broadcast originator.
    beta:
        Active-window multiplier: a node stays active for
        ``ceil(beta * log2(n)^2)`` rounds after being informed.  The paper
        writes ``β log² n`` for an unspecified constant; ``beta = 2`` is
        enough for >0.99 success at the sizes we simulate and E12 sweeps it.
    distribution:
        Scale distribution for the public selection sequence; defaults to the
        paper's ``α`` for ``(n, D)``.  Baselines pass ``α′`` or a uniform
        distribution here.
    window_factor:
        Extra multiplier on the active window (1 for Algorithm 3).  The
        Czumaj–Rytter baseline passes ``log(n/D)`` — the price of the missing
        probability floor in ``α′``.
    round_budget_constant:
        Safety-net horizon constant ``c`` in
        ``c * (D * log(n/D) + log² n)`` rounds; the engine also stops as soon
        as every node is informed.
    """

    name = "algorithm3-known-diameter-broadcast"

    def __init__(
        self,
        diameter: int,
        *,
        source: int = 0,
        beta: float = 2.0,
        distribution: Optional[ScaleDistribution] = None,
        window_factor: float = 1.0,
        round_budget_constant: float = 24.0,
    ):
        super().__init__(source=source)
        self.diameter = check_positive_int(diameter, "diameter")
        self.beta = check_positive(beta, "beta")
        self.window_factor = check_positive(window_factor, "window_factor")
        self.round_budget_constant = check_positive(
            round_budget_constant, "round_budget_constant"
        )
        self._distribution_override = distribution

        self.distribution: Optional[ScaleDistribution] = None
        self.selection: Optional[SelectionSequence] = None
        self.active_window: int = 0
        self.round_budget: int = 0
        self.lam: float = 1.0
        self.run_metadata: Dict[str, object] = {}

    # ------------------------------------------------------------------ #
    def _setup_broadcast(self) -> None:
        n = self.n
        log_n = max(1.0, math.log2(n))
        self.lam = lambda_of(n, self.diameter)
        if self._distribution_override is not None:
            self.distribution = self._distribution_override
        else:
            self.distribution = AlphaDistribution(n, self.diameter)
        self.selection = SelectionSequence(self.distribution, rng=self.rng)
        self.active_window = max(
            1, int(math.ceil(self.beta * self.window_factor * log_n**2))
        )
        self.round_budget = int(
            math.ceil(
                self.round_budget_constant
                * (self.diameter * self.lam + log_n**2)
            )
        )
        self.run_metadata = {
            "diameter": self.diameter,
            "lambda": self.lam,
            "distribution": self.distribution.name,
            "active_window": self.active_window,
            "round_budget": self.round_budget,
            "mean_transmission_probability": self.distribution.mean_transmission_probability(),
        }

    # ------------------------------------------------------------------ #
    def transmit_mask(self, round_index: int) -> np.ndarray:
        informed_round = self.informed_round
        informed = self.informed
        # A node is active while informed and within its window.
        active = informed & (round_index < informed_round + self.active_window)
        if not active.any():
            return np.zeros(self.n, dtype=bool)
        probability = self.selection.probability_at(round_index)
        draws = self.rng.random(self.n) < probability
        return active & draws

    def is_quiescent(self, round_index: int) -> bool:
        # No node is (or will ever again be) inside its active window: nodes
        # only enter the window by being informed, which requires an active
        # transmitter, so "no active node now" is absorbing.
        informed = self.informed
        active = informed & (round_index < self.informed_round + self.active_window)
        return not bool(active.any())

    def suggested_max_rounds(self) -> int:
        return self.round_budget

    def __repr__(self) -> str:
        dist = self._distribution_override.name if self._distribution_override else "alpha"
        return (
            f"{type(self).__name__}(diameter={self.diameter}, beta={self.beta}, "
            f"window_factor={self.window_factor}, distribution={dist!r})"
        )


class BatchKnownDiameterBroadcast(BatchBroadcastProtocol):
    """Batched Algorithm 3: ``R`` selection-sequence trials per round.

    Same parameters and window/horizon arithmetic as
    :class:`KnownDiameterBroadcast`; each trial carries its own public
    selection sequence, exactly as each serial run does.  The batched
    Czumaj–Rytter and Theorem 4.2 variants subclass this the same way their
    serial counterparts subclass the serial class, so the two hierarchies
    cannot drift apart.

    In exact mode trial ``t`` materialises its
    :class:`~repro.core.selection.SelectionSequence` from its own generator
    and interleaves the lazy scale-block draws with the per-round ``n`` node
    coins exactly as the serial protocol would (including the no-draw
    early-out of rounds with no active node), so batched runs are
    bit-identical to serial runs.  In fast mode one shared generator draws
    the round's ``R`` public scales in a single call.
    """

    name = "algorithm3-known-diameter-broadcast"

    def __init__(
        self,
        diameter: int,
        *,
        source: int = 0,
        beta: float = 2.0,
        distribution: Optional[ScaleDistribution] = None,
        window_factor: float = 1.0,
        round_budget_constant: float = 24.0,
    ):
        super().__init__(source=source)
        self.diameter = check_positive_int(diameter, "diameter")
        self.beta = check_positive(beta, "beta")
        self.window_factor = check_positive(window_factor, "window_factor")
        self.round_budget_constant = check_positive(
            round_budget_constant, "round_budget_constant"
        )
        self._distribution_override = distribution

        self.distribution: Optional[ScaleDistribution] = None
        self.active_window: int = 0
        self.round_budget: int = 0
        self.lam: float = 1.0
        self._sequences: Optional[List[SelectionSequence]] = None

    def _setup_broadcast(self) -> None:
        n = self.n
        log_n = max(1.0, math.log2(n))
        self.lam = lambda_of(n, self.diameter)
        if self._distribution_override is not None:
            self.distribution = self._distribution_override
        else:
            self.distribution = AlphaDistribution(n, self.diameter)
        self.active_window = max(
            1, int(math.ceil(self.beta * self.window_factor * log_n**2))
        )
        self.round_budget = int(
            math.ceil(
                self.round_budget_constant
                * (self.diameter * self.lam + log_n**2)
            )
        )
        if self.rng_source.exact_mode:
            self._sequences = [
                SelectionSequence(
                    self.distribution,
                    rng=self.rng_source.generator_for_trial(t),
                )
                for t in range(self.trials)
            ]
        else:
            self._sequences = None

    def _active_masks(self, round_index: int) -> np.ndarray:
        return self.informed & (
            round_index < self.informed_round + self.active_window
        )

    def transmit_masks(self, round_index: int, running: np.ndarray) -> np.ndarray:
        trials, n = self.trials, self.n
        active = self._active_masks(round_index)
        masks = np.zeros((trials, n), dtype=bool)
        if self._sequences is not None:
            # Exact mode: per running trial, the scale lookup (which may draw
            # a block of public randomness) then the n node coins — in the
            # serial order, and skipped entirely when nothing is active.
            for t in np.flatnonzero(running):
                if not active[t].any():
                    continue
                probability = self._sequences[t].probability_at(round_index)
                draws = self.rng_source.generator_for_trial(t).random(n)
                masks[t] = active[t] & (draws < probability)
            return masks
        # Fast mode: one call draws this round's R public scales.
        probabilities = self.distribution.sample_probabilities(
            trials, rng=self.rng_source.generator
        )
        rows = np.flatnonzero(running)
        if rows.size:
            draws = self.rng_source.uniform_rows(running, n)
            masks[rows] = active[rows] & (draws < probabilities[rows, None])
        return masks

    def quiescent(self, round_index: int) -> np.ndarray:
        # Nodes only enter the window by being informed, which requires an
        # active transmitter, so "no active node" is absorbing per trial.
        return ~self._active_masks(round_index).any(axis=1)

    def _compact_broadcast(self, keep: np.ndarray) -> None:
        if self._sequences is not None:
            # Sequence objects travel with their trials (each owns the
            # trial's generator, whose stream position must survive).
            self._sequences = [
                seq for seq, k in zip(self._sequences, keep) if k
            ]

    def suggested_max_rounds(self) -> int:
        return self.round_budget

    def trial_metadata(self, trial: int) -> Dict[str, object]:
        return {
            "diameter": self.diameter,
            "lambda": self.lam,
            "distribution": self.distribution.name,
            "active_window": self.active_window,
            "round_budget": self.round_budget,
            "mean_transmission_probability": self.distribution.mean_transmission_probability(),
        }

    def __repr__(self) -> str:
        dist = self._distribution_override.name if self._distribution_override else "alpha"
        return (
            f"{type(self).__name__}(diameter={self.diameter}, beta={self.beta}, "
            f"window_factor={self.window_factor}, distribution={dist!r})"
        )
