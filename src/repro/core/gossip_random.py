"""Algorithm 2 — gossiping in random networks.

Theorem 3.2: on a directed ``G(n, p)`` with ``p > δ log n / n``, the
following protocol completes gossiping (every rumour reaches every node) in
``O(d log n)`` rounds w.h.p. while every node performs only ``O(log n)``
transmissions:

    for round r = 0 .. C · d · log n:
        every node transmits with probability 1/d
        every node joins its own rumour and any rumour it has received into
        the message it will transmit next

Unlike Algorithm 1, nodes never become passive — each round is an
independent Bernoulli(1/d) decision — so the per-node transmission count is
``Binomial(rounds, 1/d)`` with mean ``C log n``.

The paper fixes the constant ``C = 128`` for the proof; the simulator makes
it a parameter (default 8) because the engine stops as soon as gossip is
complete anyway, and E4 measures the actual completion round.

The dynamic variant sketched in the paper (time-stamping rumours and ageing
them out) is exercised by the ``dynamic_gossip`` example via
:mod:`repro.radio.dynamics`.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

import numpy as np

from repro._util.logmath import expected_degree
from repro._util.validation import check_positive, check_probability
from repro.radio.batch import BatchGossipProtocol
from repro.radio.protocol import GossipProtocol

__all__ = ["RandomNetworkGossip", "BatchRandomNetworkGossip"]


class RandomNetworkGossip(GossipProtocol):
    """Algorithm 2 of the paper.

    Parameters
    ----------
    p:
        Edge probability of the underlying ``G(n, p)`` (known to all nodes);
        ``d = n p`` is the transmission probability denominator.
    rounds_constant:
        The constant ``C`` in the round budget ``C · d · log2 n``.
    """

    name = "algorithm2-random-gossip"

    def __init__(self, p: float, *, rounds_constant: float = 8.0):
        super().__init__()
        self.p = check_probability(p, "p", allow_zero=False)
        self.rounds_constant = check_positive(rounds_constant, "rounds_constant")
        self.d: float = 0.0
        self.transmit_probability: float = 0.0
        self.round_budget: int = 0
        self.run_metadata: Dict[str, object] = {}

    def _setup_gossip(self) -> None:
        n = self.n
        self.d = max(expected_degree(n, self.p), 1.0)
        self.transmit_probability = min(1.0, 1.0 / self.d)
        log_n = max(1.0, math.log2(n))
        self.round_budget = int(math.ceil(self.rounds_constant * self.d * log_n))
        self.run_metadata = {
            "p": self.p,
            "d": self.d,
            "transmit_probability": self.transmit_probability,
            "round_budget": self.round_budget,
        }

    def transmit_mask(self, round_index: int) -> np.ndarray:
        if round_index >= self.round_budget:
            return np.zeros(self.n, dtype=bool)
        return self.rng.random(self.n) < self.transmit_probability

    def is_quiescent(self, round_index: int) -> bool:
        return round_index >= self.round_budget

    def suggested_max_rounds(self) -> int:
        return self.round_budget

    def __repr__(self) -> str:
        return (
            f"RandomNetworkGossip(p={self.p}, rounds_constant={self.rounds_constant})"
        )


class BatchRandomNetworkGossip(BatchGossipProtocol):
    """Batched Algorithm 2: ``R`` gossip trials per vectorised round.

    Every node of every running trial flips the same Bernoulli(1/d) coin each
    round, so a round is one ``(k, n)`` uniform draw.  In exact mode each
    running trial draws its full ``rng.random(n)`` vector from its own
    generator — the serial protocol's stream call for call — making batched
    runs bit-identical to serial ones.
    """

    name = RandomNetworkGossip.name

    def __init__(self, p: float, *, rounds_constant: float = 8.0):
        super().__init__()
        self.p = check_probability(p, "p", allow_zero=False)
        self.rounds_constant = check_positive(rounds_constant, "rounds_constant")
        self.d: float = 0.0
        self.transmit_probability: float = 0.0
        self.round_budget: int = 0

    def _setup_gossip(self) -> None:
        n = self.n
        self.d = max(expected_degree(n, self.p), 1.0)
        self.transmit_probability = min(1.0, 1.0 / self.d)
        log_n = max(1.0, math.log2(n))
        self.round_budget = int(math.ceil(self.rounds_constant * self.d * log_n))

    def transmit_masks(self, round_index: int, running: np.ndarray) -> np.ndarray:
        trials, n = self.trials, self.n
        masks = np.zeros((trials, n), dtype=bool)
        if round_index >= self.round_budget:
            return masks
        rows = np.flatnonzero(running)
        if rows.size:
            draws = self.rng_source.uniform_rows(running, n)
            masks[rows] = draws < self.transmit_probability
        return masks

    def quiescent(self, round_index: int) -> np.ndarray:
        return np.full(self.trials, round_index >= self.round_budget, dtype=bool)

    def suggested_max_rounds(self) -> int:
        return self.round_budget

    def trial_metadata(self, trial: int) -> Dict[str, object]:
        return {
            "p": self.p,
            "d": self.d,
            "transmit_probability": self.transmit_probability,
            "round_budget": self.round_budget,
        }

    def __repr__(self) -> str:
        return (
            f"BatchRandomNetworkGossip(p={self.p}, "
            f"rounds_constant={self.rounds_constant})"
        )
