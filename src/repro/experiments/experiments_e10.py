"""E10 — Corollary 4.5: the ``D = Θ(n)`` corner of the lower bound.

Claim: there is a network with ``O(n)`` nodes such that any oblivious
algorithm finishing broadcast in ``c·n`` rounds w.h.p. needs an expected
``Ω(log² n)`` transmissions (per node).  This is Theorem 4.4 specialised to
``D = Θ(n)`` (``log(n/D) = Θ(1)``).

Experiment: same machinery as E8 but on the Theorem-4.4 network built with a
diameter proportional to ``n``; for each per-round probability ``q`` we
check whether the run finishes within the ``c·n`` budget and what the
per-node energy of the star leaves is; the cheapest successful ``q`` is
compared against ``log² n``.  Like E8, the leaf-energy measurement needs the
construction's node indices, so each swept ``q`` is a probe cell.
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, List, Optional

import numpy as np

from repro._util.rng import spawn_generators
from repro.core.oblivious import TimeInvariantBroadcast
from repro.experiments.common import pick
from repro.experiments.results import ExperimentResult
from repro.graphs.lowerbound import theorem44_network
from repro.radio.engine import SimulationEngine
from repro.scenarios import ScenarioSpec, SweepCell, SweepGrid, register_probe, run_scenario

EXPERIMENT_ID = "E10"
TITLE = "Corollary 4.5: Omega(log^2 n) transmissions when the time budget is c*n"
CLAIM = (
    "Corollary 4.5: there is an O(n)-node network on which any oblivious "
    "broadcasting algorithm finishing in c*n rounds with probability 1-1/n "
    "needs an expected Omega(log^2 n) transmissions."
)

# The budget is c * (number of nodes); c must leave the path (length ~ D)
# traversable at the energy-optimal q ~ 1/log n, i.e. c >= a few, while
# still being a linear-time budget.
_TIME_BUDGET_CONSTANT = 8.0

METRICS = ("success", "rounds", "leaf_tx")


def _network_parameters(n_param: int):
    log_n = max(1.0, math.log2(n_param))
    diameter = 2 * int(math.floor(log_n)) + n_param  # D = Θ(n): long path
    return log_n, diameter


@register_probe("e10.linear_budget")
def _linear_budget_probe(params, seed, repetitions) -> Iterator[dict]:
    """Fixed-q time-invariant broadcast under the c*n round budget."""
    n_param = params["n"]
    q = params["q"]
    _, diameter = _network_parameters(n_param)
    network, structure = theorem44_network(n_param, diameter, return_structure=True)
    budget = int(math.ceil(_TIME_BUDGET_CONSTANT * network.n))
    leaves = np.concatenate(structure.star_leaves)
    generators = spawn_generators(seed + int(q * 10_000), repetitions)
    for rep in range(repetitions):
        protocol = TimeInvariantBroadcast(q, source=structure.source)
        engine = SimulationEngine(keep_arrays=True)
        result = engine.run(network, protocol, rng=generators[rep], max_rounds=budget)
        sample: Dict[str, object] = {"success": float(result.completed)}
        if result.completed:
            sample["rounds"] = float(result.completion_round)
            sample["leaf_tx"] = float(
                result.per_node_transmissions[leaves].mean()
            )
        yield sample


def scenario(scale: str = "quick", seed: int = 0) -> ScenarioSpec:
    """The E10 probe grid: a q axis under the linear time budget."""
    n_param = pick(scale, quick=64, full=128)
    repetitions = pick(scale, quick=5, full=15)
    q_values = pick(
        scale,
        quick=[0.3, 0.15, 0.1, 0.05, 0.02],
        full=[0.5, 0.3, 0.2, 0.15, 0.1, 0.075, 0.05, 0.02, 0.01],
    )

    cells = [
        SweepCell(
            coords={"q": q},
            kind="probe",
            probe="e10.linear_budget",
            params={"n": n_param, "q": q},
            repetitions=repetitions,
        )
        for q in q_values
    ]
    _, diameter = _network_parameters(n_param)
    return ScenarioSpec(
        scenario_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        grid=SweepGrid(cells=tuple(cells)),
        metrics=METRICS,
        seed=seed,
        parameters={
            "scale": scale,
            "n": n_param,
            "diameter": diameter,
            "q_values": q_values,
            "repetitions": repetitions,
            "seed": seed,
        },
    )


def run(
    scale: str = "quick", seed: int = 0, processes: Optional[int] = None
) -> ExperimentResult:
    """Check the energy floor under a linear time budget."""
    spec = scenario(scale, seed)
    cells = run_scenario(spec, processes=processes)

    n_param = spec.parameters["n"]
    diameter = spec.parameters["diameter"]
    log_n = max(1.0, math.log2(n_param))
    network, _ = theorem44_network(n_param, diameter, return_structure=True)
    budget = int(math.ceil(_TIME_BUDGET_CONSTANT * network.n))

    columns = [
        "q",
        "success rate within c*n rounds",
        "rounds (mean, successful)",
        "leaf tx/node (mean, successful)",
        "leaf tx/node / log2^2 n",
    ]
    rows: List[List[object]] = []
    cheapest_successful: Optional[float] = None

    for cell in cells:
        q = cell.coords["q"]
        success_rate = cell.success_rate
        completed = cell.count("leaf_tx") > 0
        mean_energy = cell.mean("leaf_tx")
        rows.append(
            [
                q,
                success_rate,
                cell.mean("rounds"),
                mean_energy,
                mean_energy / (log_n**2) if completed else None,
            ]
        )
        if success_rate >= 0.8 and completed:
            if cheapest_successful is None or mean_energy < cheapest_successful:
                cheapest_successful = mean_energy

    notes = [
        f"network: Theorem 4.4 construction with n={n_param}, D={diameter} "
        f"({network.n} nodes); time budget = {budget} rounds (c = {_TIME_BUDGET_CONSTANT}).",
    ]
    if cheapest_successful is not None:
        notes.append(
            "cheapest reliably-successful time-invariant protocol spends "
            f"{cheapest_successful:.1f} leaf transmissions per node = "
            f"{cheapest_successful / log_n**2:.2f} x log2^2 n — the Corollary 4.5 floor "
            "is Ω(log^2 n) up to its constant."
        )
    else:
        notes.append(
            "no swept q completed reliably within the budget — the energy floor "
            "is trivially respected for this sweep."
        )

    parameters = dict(spec.parameters)
    parameters["time_budget"] = budget
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        columns=columns,
        rows=rows,
        notes=notes,
        parameters=parameters,
    )
