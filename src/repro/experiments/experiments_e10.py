"""E10 — Corollary 4.5: the ``D = Θ(n)`` corner of the lower bound.

Claim: there is a network with ``O(n)`` nodes such that any oblivious
algorithm finishing broadcast in ``c·n`` rounds w.h.p. needs an expected
``Ω(log² n)`` transmissions (per node).  This is Theorem 4.4 specialised to
``D = Θ(n)`` (``log(n/D) = Θ(1)``).

Experiment: same machinery as E8 but on the Theorem-4.4 network built with a
diameter proportional to ``n``; for each per-round probability ``q`` we
check whether the run finishes within the ``c·n`` budget and what the
per-node energy of the star leaves is; the cheapest successful ``q`` is
compared against ``log² n``.
"""

from __future__ import annotations

import math
from typing import List, Optional

import numpy as np

from repro._util.rng import spawn_generators
from repro.core.oblivious import TimeInvariantBroadcast
from repro.experiments.common import pick
from repro.experiments.results import ExperimentResult
from repro.graphs.lowerbound import theorem44_network
from repro.radio.engine import SimulationEngine

EXPERIMENT_ID = "E10"
TITLE = "Corollary 4.5: Omega(log^2 n) transmissions when the time budget is c*n"
CLAIM = (
    "Corollary 4.5: there is an O(n)-node network on which any oblivious "
    "broadcasting algorithm finishing in c*n rounds with probability 1-1/n "
    "needs an expected Omega(log^2 n) transmissions."
)


def run(
    scale: str = "quick", seed: int = 0, processes: Optional[int] = None
) -> ExperimentResult:
    """Check the energy floor under a linear time budget."""
    n_param = pick(scale, quick=64, full=128)
    repetitions = pick(scale, quick=5, full=15)
    q_values = pick(
        scale,
        quick=[0.3, 0.15, 0.1, 0.05, 0.02],
        full=[0.5, 0.3, 0.2, 0.15, 0.1, 0.075, 0.05, 0.02, 0.01],
    )
    # The budget is c * (number of nodes); c must leave the path (length ~ D)
    # traversable at the energy-optimal q ~ 1/log n, i.e. c >= a few, while
    # still being a linear-time budget.
    time_budget_constant = 8.0

    log_n = max(1.0, math.log2(n_param))
    diameter = 2 * int(math.floor(log_n)) + n_param  # D = Θ(n): long path
    network, structure = theorem44_network(n_param, diameter, return_structure=True)
    budget = int(math.ceil(time_budget_constant * network.n))
    leaves = np.concatenate(structure.star_leaves)

    columns = [
        "q",
        "success rate within c*n rounds",
        "rounds (mean, successful)",
        "leaf tx/node (mean, successful)",
        "leaf tx/node / log2^2 n",
    ]
    rows: List[List[object]] = []
    cheapest_successful: Optional[float] = None

    for q in q_values:
        generators = spawn_generators(seed + int(q * 10_000), repetitions)
        times, energies, successes = [], [], 0
        for rep in range(repetitions):
            protocol = TimeInvariantBroadcast(q, source=structure.source)
            engine = SimulationEngine(keep_arrays=True)
            result = engine.run(
                network, protocol, rng=generators[rep], max_rounds=budget
            )
            if result.completed:
                successes += 1
                times.append(result.completion_round)
                energies.append(float(result.per_node_transmissions[leaves].mean()))
        success_rate = successes / repetitions
        mean_energy = float(np.mean(energies)) if energies else float("nan")
        rows.append(
            [
                q,
                success_rate,
                float(np.mean(times)) if times else None,
                mean_energy if energies else None,
                mean_energy / (log_n**2) if energies else None,
            ]
        )
        if success_rate >= 0.8 and energies:
            if cheapest_successful is None or mean_energy < cheapest_successful:
                cheapest_successful = mean_energy

    notes = [
        f"network: Theorem 4.4 construction with n={n_param}, D={diameter} "
        f"({network.n} nodes); time budget = {budget} rounds (c = {time_budget_constant}).",
    ]
    if cheapest_successful is not None:
        notes.append(
            "cheapest reliably-successful time-invariant protocol spends "
            f"{cheapest_successful:.1f} leaf transmissions per node = "
            f"{cheapest_successful / log_n**2:.2f} x log2^2 n — the Corollary 4.5 floor "
            "is Ω(log^2 n) up to its constant."
        )
    else:
        notes.append(
            "no swept q completed reliably within the budget — the energy floor "
            "is trivially respected for this sweep."
        )

    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        columns=columns,
        rows=rows,
        notes=notes,
        parameters={
            "scale": scale,
            "n": n_param,
            "diameter": diameter,
            "q_values": q_values,
            "repetitions": repetitions,
            "time_budget": budget,
            "seed": seed,
        },
    )
