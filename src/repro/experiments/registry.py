"""Experiment registry: id -> module, discovered by scanning the package.

The CLI, the benchmarks and EXPERIMENTS.md all address experiments by id
(``"E1"`` … ``"E16"``); this module is the single source of truth for what
exists.  Instead of a hand-maintained import list, the registry scans
:mod:`repro.experiments` for ``experiments_e<N>.py`` modules at import time:
dropping a new experiment file into the package (with ``EXPERIMENT_ID``,
``TITLE``, ``CLAIM`` and a ``run`` callable) registers it — and, because the
scan imports every module, each experiment's scenario probes and metrics are
registered as an automatic side effect.
"""

from __future__ import annotations

import importlib
import pkgutil
import re
from types import ModuleType
from typing import Dict, List, Optional

import repro.experiments as _package
from repro.experiments.results import ExperimentResult

__all__ = ["all_experiments", "get_experiment", "run_experiment"]

#: Experiment modules follow this file-name convention.
_MODULE_PATTERN = re.compile(r"experiments_e\d+$")


def _discover_modules() -> List[ModuleType]:
    """Import every ``experiments_eN`` module of the package, in id order."""
    names = sorted(
        name
        for _, name, is_pkg in pkgutil.iter_modules(_package.__path__)
        if not is_pkg and _MODULE_PATTERN.fullmatch(name)
    )
    modules = [
        importlib.import_module(f"{_package.__name__}.{name}") for name in names
    ]
    for module in modules:
        for attribute in ("EXPERIMENT_ID", "TITLE", "CLAIM", "run"):
            if not hasattr(module, attribute):
                raise AttributeError(
                    f"experiment module {module.__name__} is missing {attribute}"
                )
    return sorted(modules, key=lambda m: int(m.EXPERIMENT_ID[1:]))


#: Discovery is deferred to first use: the experiment modules import the
#: scenario layer, which imports the runner (this package) — scanning at
#: import time would make ``import repro.scenarios`` circular.
_MODULES: Optional[List[ModuleType]] = None
_REGISTRY: Dict[str, ModuleType] = {}


def _modules() -> List[ModuleType]:
    global _MODULES
    if _MODULES is None:
        _MODULES = _discover_modules()
        _REGISTRY.update(
            {module.EXPERIMENT_ID.lower(): module for module in _MODULES}
        )
    return _MODULES


def all_experiments() -> List[ModuleType]:
    """All experiment modules in id order."""
    return list(_modules())


def get_experiment(experiment_id: str) -> ModuleType:
    """Look up an experiment module by id (case-insensitive)."""
    modules = _modules()
    key = experiment_id.strip().lower()
    try:
        return _REGISTRY[key]
    except KeyError:
        known = ", ".join(m.EXPERIMENT_ID for m in modules)
        raise ValueError(f"unknown experiment {experiment_id!r}; known: {known}")


def run_experiment(
    experiment_id: str,
    *,
    scale: str = "quick",
    seed: int = 0,
    processes: Optional[int] = None,
) -> ExperimentResult:
    """Run one experiment by id."""
    module = get_experiment(experiment_id)
    return module.run(scale=scale, seed=seed, processes=processes)
