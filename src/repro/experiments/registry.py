"""Experiment registry: id -> module.

The CLI, the benchmarks and EXPERIMENTS.md all address experiments by id
(``"E1"`` … ``"E14"``); this module is the single source of truth for what
exists.
"""

from __future__ import annotations

from types import ModuleType
from typing import Dict, List, Optional

from repro.experiments import (
    experiments_e1,
    experiments_e2,
    experiments_e3,
    experiments_e4,
    experiments_e5,
    experiments_e6,
    experiments_e7,
    experiments_e8,
    experiments_e9,
    experiments_e10,
    experiments_e11,
    experiments_e12,
    experiments_e13,
    experiments_e14,
    experiments_e15,
    experiments_e16,
)
from repro.experiments.results import ExperimentResult

__all__ = ["all_experiments", "get_experiment", "run_experiment"]

_MODULES: List[ModuleType] = [
    experiments_e1,
    experiments_e2,
    experiments_e3,
    experiments_e4,
    experiments_e5,
    experiments_e6,
    experiments_e7,
    experiments_e8,
    experiments_e9,
    experiments_e10,
    experiments_e11,
    experiments_e12,
    experiments_e13,
    experiments_e14,
    experiments_e15,
    experiments_e16,
]

_REGISTRY: Dict[str, ModuleType] = {
    module.EXPERIMENT_ID.lower(): module for module in _MODULES
}


def all_experiments() -> List[ModuleType]:
    """All experiment modules in id order."""
    return list(_MODULES)


def get_experiment(experiment_id: str) -> ModuleType:
    """Look up an experiment module by id (case-insensitive)."""
    key = experiment_id.strip().lower()
    try:
        return _REGISTRY[key]
    except KeyError:
        known = ", ".join(m.EXPERIMENT_ID for m in _MODULES)
        raise ValueError(f"unknown experiment {experiment_id!r}; known: {known}")


def run_experiment(
    experiment_id: str,
    *,
    scale: str = "quick",
    seed: int = 0,
    processes: Optional[int] = None,
) -> ExperimentResult:
    """Run one experiment by id."""
    module = get_experiment(experiment_id)
    return module.run(scale=scale, seed=seed, processes=processes)
