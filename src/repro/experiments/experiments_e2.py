"""E2 — Lemmas 2.3–2.5: phase-wise growth of the active set in Algorithm 1.

Claims checked:

* Phase 1 rounds multiply the active set by ``Θ(d)`` (Lemma 2.3) — we report
  the geometric mean of the per-round growth factor divided by ``d``;
* after Phase 1 the active set is ``Θ(d^T)`` (Lemma 2.4) — we report
  ``|U_{T+1}| / d^T``;
* after Phase 2 (sparse regime) a constant fraction of all nodes is informed
  (Lemma 2.5) — we report the informed fraction right after Phase 2.
"""

from __future__ import annotations

import math
from typing import List, Optional

import numpy as np

from repro._util.rng import spawn_generators
from repro.analysis.concentration import check_phase1_growth
from repro.core.broadcast_random import EnergyEfficientBroadcast
from repro.experiments.common import pick, threshold_p, sparse_p
from repro.experiments.results import ExperimentResult
from repro.graphs.random_digraph import random_digraph
from repro.radio.engine import SimulationEngine

EXPERIMENT_ID = "E2"
TITLE = "Algorithm 1 phase growth (Lemmas 2.3-2.5)"
CLAIM = (
    "Lemma 2.3: in Phase 1 the active set grows by a factor Theta(d) per round; "
    "Lemma 2.4: after Phase 1 it has size Theta(d^T); "
    "Lemma 2.5: after Phase 2 a constant fraction of the n nodes is informed."
)


def run(
    scale: str = "quick", seed: int = 0, processes: Optional[int] = None
) -> ExperimentResult:
    """Run Algorithm 1 with per-round tracing and summarise the phase growth."""
    # n = 8192 is the smallest size where T = 2 Phase-1 rounds are exercised
    # robustly (d^T well below n); below that the threshold regime has T = 1.
    sizes = pick(scale, quick=[1024, 8192], full=[1024, 4096, 8192, 16384])
    repetitions = pick(scale, quick=5, full=20)
    regimes = {"threshold (4 log n / n)": threshold_p, "sparse (n^-0.6)": sparse_p}

    columns = [
        "n",
        "regime",
        "d",
        "T",
        "growth factor / d (geo-mean)",
        "|U_{T+1}| / d^T (mean)",
        "informed fraction after phase 2 (mean)",
        "success_rate",
    ]
    rows: List[List[object]] = []
    notes: List[str] = []

    for regime_name, p_of in regimes.items():
        for n in sizes:
            p = p_of(n)
            growth_ratios: List[float] = []
            phase1_ratios: List[float] = []
            phase2_fractions: List[float] = []
            successes = 0
            generators = spawn_generators(seed, 2 * repetitions)
            protocol_T = None
            d = n * p
            for rep in range(repetitions):
                graph_rng = generators[2 * rep]
                protocol_rng = generators[2 * rep + 1]
                network = random_digraph(n, p, rng=graph_rng)
                protocol = EnergyEfficientBroadcast(p)
                engine = SimulationEngine(record_rounds=True)
                result = engine.run(network, protocol, rng=protocol_rng)
                successes += int(result.completed)
                protocol_T = protocol.T
                history = protocol.active_history
                check = check_phase1_growth(history, protocol.T, protocol.d)
                growth_ratios.extend(check.normalized_growth.tolist())
                phase1_ratios.append(check.phase1_ratio)
                # Informed fraction right after Phase 2 (or after Phase 1 when
                # Phase 2 is skipped): use the per-round informed curve.
                curve = result.informed_curve()
                boundary = (
                    protocol.phase2_round + 1
                    if protocol.phase2_round is not None
                    else protocol.T
                )
                boundary = min(boundary, curve.size) - 1
                if boundary >= 0:
                    phase2_fractions.append(float(curve[boundary]) / n)

            positive_growth = [g for g in growth_ratios if g > 0]
            geo_mean_growth = (
                float(np.exp(np.mean(np.log(positive_growth))))
                if positive_growth
                else float("nan")
            )
            rows.append(
                [
                    n,
                    regime_name,
                    d,
                    protocol_T,
                    geo_mean_growth,
                    float(np.mean(phase1_ratios)),
                    float(np.mean(phase2_fractions)) if phase2_fractions else None,
                    successes / repetitions,
                ]
            )

    notes.append(
        "Growth factor / d should be a constant in (1/16, 2) per Lemma 2.3; "
        "|U_{T+1}|/d^T should be a constant (Lemma 2.4); the post-Phase-2 informed "
        "fraction should be a constant fraction of n (Lemma 2.5)."
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        columns=columns,
        rows=rows,
        notes=notes,
        parameters={"scale": scale, "sizes": sizes, "repetitions": repetitions, "seed": seed},
    )
