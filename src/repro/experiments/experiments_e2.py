"""E2 — Lemmas 2.3–2.5: phase-wise growth of the active set in Algorithm 1.

Claims checked:

* Phase 1 rounds multiply the active set by ``Θ(d)`` (Lemma 2.3) — we report
  the geometric mean of the per-round growth factor divided by ``d``;
* after Phase 1 the active set is ``Θ(d^T)`` (Lemma 2.4) — we report
  ``|U_{T+1}| / d^T``;
* after Phase 2 (sparse regime) a constant fraction of all nodes is informed
  (Lemma 2.5) — we report the informed fraction right after Phase 2.

The measurement needs Algorithm 1's *internal* phase history (the
``active_history`` the protocol object records), which no declarative job
can expose — so the sweep runs as a probe cell per ``(regime, n)``
coordinate, streaming one sample of growth/ratio metrics per repetition.
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, List, Optional

import numpy as np

from repro._util.rng import spawn_generators
from repro.analysis.concentration import check_phase1_growth
from repro.core.broadcast_random import EnergyEfficientBroadcast
from repro.experiments.common import pick, sparse_p, threshold_p
from repro.experiments.results import ExperimentResult
from repro.graphs.random_digraph import random_digraph
from repro.radio.engine import SimulationEngine
from repro.scenarios import ScenarioSpec, SweepCell, SweepGrid, register_probe, run_scenario

EXPERIMENT_ID = "E2"
TITLE = "Algorithm 1 phase growth (Lemmas 2.3-2.5)"
CLAIM = (
    "Lemma 2.3: in Phase 1 the active set grows by a factor Theta(d) per round; "
    "Lemma 2.4: after Phase 1 it has size Theta(d^T); "
    "Lemma 2.5: after Phase 2 a constant fraction of the n nodes is informed."
)

_REGIMES = {"threshold (4 log n / n)": threshold_p, "sparse (n^-0.6)": sparse_p}

METRICS = ("success", "log_growth", "phase1_ratio", "phase2_fraction", "T")


@register_probe("e2.phase_growth")
def _phase_growth_probe(params, seed, repetitions) -> Iterator[dict]:
    """Run Algorithm 1 with per-round tracing; yield phase metrics per trial."""
    n = params["n"]
    p = params["p"]
    generators = spawn_generators(seed, 2 * repetitions)
    for rep in range(repetitions):
        graph_rng = generators[2 * rep]
        protocol_rng = generators[2 * rep + 1]
        network = random_digraph(n, p, rng=graph_rng)
        protocol = EnergyEfficientBroadcast(p)
        engine = SimulationEngine(record_rounds=True)
        result = engine.run(network, protocol, rng=protocol_rng)
        history = protocol.active_history
        check = check_phase1_growth(history, protocol.T, protocol.d)
        sample: Dict[str, object] = {
            "success": float(result.completed),
            "log_growth": [
                math.log(g) for g in check.normalized_growth.tolist() if g > 0
            ],
            "phase1_ratio": float(check.phase1_ratio),
            "T": float(protocol.T),
        }
        # Informed fraction right after Phase 2 (or after Phase 1 when
        # Phase 2 is skipped): use the per-round informed curve.
        curve = result.informed_curve()
        boundary = (
            protocol.phase2_round + 1
            if protocol.phase2_round is not None
            else protocol.T
        )
        boundary = min(boundary, curve.size) - 1
        sample["phase2_fraction"] = (
            float(curve[boundary]) / n if boundary >= 0 else None
        )
        yield sample


def scenario(scale: str = "quick", seed: int = 0) -> ScenarioSpec:
    """The E2 probe grid: regime × n."""
    # n = 8192 is the smallest size where T = 2 Phase-1 rounds are exercised
    # robustly (d^T well below n); below that the threshold regime has T = 1.
    sizes = pick(scale, quick=[1024, 8192], full=[1024, 4096, 8192, 16384])
    repetitions = pick(scale, quick=5, full=20)

    def bind(coords: Dict[str, object]) -> SweepCell:
        n = coords["n"]
        p = _REGIMES[coords["regime"]](n)
        return SweepCell(
            coords={**coords, "p": p, "d": n * p},
            kind="probe",
            probe="e2.phase_growth",
            params={"n": n, "p": p},
            repetitions=repetitions,
        )

    grid = SweepGrid.from_axes({"regime": list(_REGIMES), "n": sizes}, bind)
    return ScenarioSpec(
        scenario_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        grid=grid,
        metrics=METRICS,
        seed=seed,
        parameters={
            "scale": scale,
            "sizes": sizes,
            "repetitions": repetitions,
            "seed": seed,
        },
    )


def run(
    scale: str = "quick", seed: int = 0, processes: Optional[int] = None
) -> ExperimentResult:
    """Run Algorithm 1 with per-round tracing and summarise the phase growth."""
    spec = scenario(scale, seed)
    cells = run_scenario(spec, processes=processes)

    columns = [
        "n",
        "regime",
        "d",
        "T",
        "growth factor / d (geo-mean)",
        "|U_{T+1}| / d^T (mean)",
        "informed fraction after phase 2 (mean)",
        "success_rate",
    ]
    rows: List[List[object]] = []
    for cell in cells:
        log_growth_mean = cell.mean("log_growth")
        geo_mean_growth = (
            float(np.exp(log_growth_mean))
            if log_growth_mean is not None
            else float("nan")
        )
        t_mean = cell.mean("T")
        rows.append(
            [
                cell.coords["n"],
                cell.coords["regime"],
                cell.coords["d"],
                int(t_mean) if t_mean is not None else None,
                geo_mean_growth,
                cell.mean("phase1_ratio"),
                cell.mean("phase2_fraction"),
                cell.success_rate,
            ]
        )

    notes = [
        "Growth factor / d should be a constant in (1/16, 2) per Lemma 2.3; "
        "|U_{T+1}|/d^T should be a constant (Lemma 2.4); the post-Phase-2 informed "
        "fraction should be a constant fraction of n (Lemma 2.5)."
    ]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        columns=columns,
        rows=rows,
        notes=notes,
        parameters=dict(spec.parameters),
    )
