"""E13 — Extension: random geometric graphs (the paper's Section 5 future work).

The paper notes that the Erdős–Rényi model is unrealistic for AdHoc networks
and names random geometric graphs as the natural alternative.  This
experiment runs the paper's protocols on unit-disk geometric networks (and on
the heterogeneous-radius variant with genuinely asymmetric links) and
compares them with the Decay baseline:

* Algorithm 1 is used with the *effective* density ``p_eff = mean degree / n``
  (the only quantity it needs); geometric graphs violate the independence
  assumptions of its analysis, so this measures robustness, not a theorem;
* Algorithm 3 is given the measured diameter (its only global requirement);
* Decay needs neither.

Every protocol must see the *same* sampled networks (with disconnected
samples discarded), and Algorithm 1/3 need per-sample measured quantities
(``p_eff``, diameter) — coupling no independent job sweep can express — so
each ``(n, radius-factor, topology)`` coordinate runs as one probe cell
emitting per-protocol metrics.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro._util.rng import spawn_generators
from repro.baselines.decay import DecayBroadcast
from repro.core.broadcast_general import KnownDiameterBroadcast
from repro.core.broadcast_random import EnergyEfficientBroadcast
from repro.experiments.common import pick
from repro.experiments.results import ExperimentResult
from repro.graphs.geometric import (
    connectivity_radius,
    geometric_digraph,
    heterogeneous_geometric_digraph,
)
from repro.graphs.properties import diameter_estimate, is_strongly_connected
from repro.radio.engine import SimulationEngine
from repro.scenarios import ScenarioSpec, SweepCell, SweepGrid, register_probe, run_scenario

EXPERIMENT_ID = "E13"
TITLE = "Extension: broadcasting on random geometric (sensor-field) networks"
CLAIM = (
    "Section 5 names random geometric graphs as the realistic AdHoc model; "
    "this extension measures how the paper's protocols behave there compared "
    "with the Decay baseline (no theorem is claimed by the paper)."
)

_PROTOCOL_LABELS = ("algorithm1 (p_eff)", "algorithm3", "decay")

METRICS = tuple(
    f"{label}/{metric}"
    for label in _PROTOCOL_LABELS
    for metric in ("success", "rounds", "mean_tx", "max_tx")
)


@register_probe("e13.geometric_comparison")
def _geometric_probe(params, seed, repetitions) -> Iterator[dict]:
    """Run all three protocols on shared geometric samples (skip disconnected)."""
    n = params["n"]
    factor = params["factor"]
    topology = params["topology"]
    radius = factor * connectivity_radius(n)
    if topology == "geometric":
        def build(g):
            return geometric_digraph(n, radius, rng=g)
    else:
        def build(g):
            return heterogeneous_geometric_digraph(
                n, 0.7 * radius, 1.3 * radius, rng=g
            )
    sub_seed = (
        seed * 1_000_003
        + n * 131
        + int(factor * 100) * 7
        + (1 if topology == "geometric" else 2)
    )
    generators = spawn_generators(sub_seed, 3 * repetitions)
    for rep in range(repetitions):
        graph_rng = generators[3 * rep]
        network = build(graph_rng)
        if not is_strongly_connected(network):
            # Broadcast is impossible on a disconnected sample: the trial is
            # discarded entirely (no metrics observed for any protocol).
            continue
        diameter = diameter_estimate(network, rng=generators[3 * rep + 1])
        p_eff = max(network.out_degrees().mean() / n, 1.0 / n)
        protocols = {
            "algorithm1 (p_eff)": EnergyEfficientBroadcast(p_eff),
            "algorithm3": KnownDiameterBroadcast(max(1, diameter)),
            "decay": DecayBroadcast(),
        }
        sample: Dict[str, object] = {}
        for name, protocol in protocols.items():
            engine = SimulationEngine(run_to_quiescence=True)
            result = engine.run(network, protocol, rng=generators[3 * rep + 2])
            sample[f"{name}/success"] = float(result.completed)
            sample[f"{name}/rounds"] = (
                float(result.completion_round) if result.completed else None
            )
            sample[f"{name}/mean_tx"] = float(result.energy.mean_per_node)
            sample[f"{name}/max_tx"] = float(result.energy.max_per_node)
        yield sample


def scenario(scale: str = "quick", seed: int = 0) -> ScenarioSpec:
    """The E13 probe grid: n × radius factor × topology."""
    sizes = pick(scale, quick=[256], full=[256, 512, 1024])
    repetitions = pick(scale, quick=4, full=12)
    radius_factors = pick(scale, quick=[1.5, 2.5], full=[1.25, 1.5, 2.0, 3.0])

    def bind(coords: Dict[str, object]) -> SweepCell:
        return SweepCell(
            coords=dict(coords),
            kind="probe",
            probe="e13.geometric_comparison",
            params={
                "n": coords["n"],
                "factor": coords["factor"],
                "topology": coords["topology"],
            },
            repetitions=repetitions,
        )

    grid = SweepGrid.from_axes(
        {
            "n": sizes,
            "factor": radius_factors,
            "topology": ["geometric", "geometric-asymmetric"],
        },
        bind,
    )
    return ScenarioSpec(
        scenario_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        grid=grid,
        metrics=METRICS,
        seed=seed,
        parameters={
            "scale": scale,
            "sizes": sizes,
            "radius_factors": radius_factors,
            "repetitions": repetitions,
            "seed": seed,
        },
    )


def run(
    scale: str = "quick", seed: int = 0, processes: Optional[int] = None
) -> ExperimentResult:
    """Compare protocols on symmetric and asymmetric geometric networks."""
    spec = scenario(scale, seed)
    cells = run_scenario(spec, processes=processes)

    columns = [
        "topology",
        "n",
        "radius factor",
        "protocol",
        "success_rate",
        "rounds (mean)",
        "mean tx/node",
        "max tx/node",
    ]
    rows: List[List[object]] = []
    for cell in cells:
        for name in _PROTOCOL_LABELS:
            runs_count = cell.count(f"{name}/success")
            if runs_count == 0:
                continue
            rounds_mean = cell.mean(f"{name}/rounds")
            rows.append(
                [
                    cell.coords["topology"],
                    cell.coords["n"],
                    cell.coords["factor"],
                    name,
                    cell.mean(f"{name}/success"),
                    rounds_mean,
                    cell.mean(f"{name}/mean_tx"),
                    int(cell.maximum(f"{name}/max_tx")),
                ]
            )

    notes = [
        "Runs on disconnected samples are discarded (broadcast is impossible "
        "there); near the connectivity threshold (radius factor 1.25-1.5) this "
        "removes a noticeable fraction of samples.",
        "Algorithm 1 keeps its ≤1-transmission-per-node invariant by "
        "construction even off its analysed model; its success rate on "
        "geometric graphs measures robustness of the three-phase schedule, "
        "not a theorem of the paper.",
    ]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        columns=columns,
        rows=rows,
        notes=notes,
        parameters=dict(spec.parameters),
    )
