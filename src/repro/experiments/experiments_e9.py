"""E9 — Fig. 1: the distribution α versus the Czumaj–Rytter α′.

The paper's Fig. 1 contrasts the two scale distributions.  This experiment is
deterministic: for a few ``(n, D)`` pairs it tabulates the structural
quantities the Section-4 proofs rely on —

* the probability floor ``min_k α_k`` relative to ``1/(2 log n)`` (the floor
  exists for α, vanishes geometrically for α′);
* the mean transmission probability ``E[2^{-I}]`` relative to ``1/λ`` (both
  distributions spend ``Θ(1/λ)`` per active round);
* the scale-wise domination ``min_k α_k / α′_k`` (the paper states
  ``α_k ≥ α′_k / 2``).
"""

from __future__ import annotations

import math
from typing import List, Optional

import numpy as np

from repro.core.distributions import AlphaDistribution, CzumajRytterDistribution
from repro.experiments.common import pick
from repro.experiments.results import ExperimentResult, Series

EXPERIMENT_ID = "E9"
TITLE = "Fig. 1: the distribution alpha vs the Czumaj-Rytter alpha'"
CLAIM = (
    "Fig. 1 / Section 4.1: alpha keeps probability >= ~1/(2 log n) on every "
    "scale while spending only Theta(1/lambda) expected transmissions per "
    "round; alpha' has the same mean but geometrically vanishing mass on "
    "large scales, and alpha_k >= alpha'_k / 2 scale-wise."
)


def run(
    scale: str = "quick", seed: int = 0, processes: Optional[int] = None
) -> ExperimentResult:
    """Tabulate the structural properties of α and α′."""
    pairs = pick(
        scale,
        quick=[(1024, 8), (1024, 64), (4096, 64)],
        full=[(1024, 8), (1024, 64), (4096, 16), (4096, 256), (65536, 256), (65536, 4096)],
    )

    columns = [
        "n",
        "D",
        "lambda",
        "distribution",
        "min_k Pr[k] * 2 log2 n",
        "mean 2^-I * lambda",
        "min_k alpha_k/alpha'_k",
        "largest-scale prob ratio alpha/alpha'",
    ]
    rows: List[List[object]] = []
    series: List[Series] = []

    for n, diameter in pairs:
        log_n = max(1.0, math.log2(n))
        alpha = AlphaDistribution(n, diameter)
        alpha_prime = CzumajRytterDistribution(n, diameter)
        lam = alpha.lam

        # Scale-wise ratio over the scales both distributions support (>= 1).
        a = alpha.probabilities[1:]
        ap = alpha_prime.probabilities[1:]
        with np.errstate(divide="ignore"):
            ratios = np.where(ap > 0, a / np.where(ap > 0, ap, 1.0), np.inf)
        for dist, label in ((alpha, "alpha"), (alpha_prime, "alpha_prime")):
            rows.append(
                [
                    n,
                    diameter,
                    lam,
                    label,
                    dist.min_scale_probability() * 2 * log_n,
                    dist.mean_transmission_probability() * lam,
                    float(ratios.min()) if label == "alpha" else None,
                    float(a[-1] / ap[-1]) if label == "alpha" else None,
                ]
            )
        series.append(
            Series(
                name=f"alpha probabilities (n={n}, D={diameter})",
                x=list(range(1, alpha.num_scales)),
                y=[float(v) for v in alpha.probabilities[1:]],
                x_label="scale k",
                y_label="Pr[I = k]",
            )
        )
        series.append(
            Series(
                name=f"alpha_prime probabilities (n={n}, D={diameter})",
                x=list(range(1, alpha_prime.num_scales)),
                y=[float(v) for v in alpha_prime.probabilities[1:]],
                x_label="scale k",
                y_label="Pr[I = k]",
            )
        )

    notes = [
        "For alpha the 'min_k Pr[k] * 2 log2 n' column is Θ(1) (the floor); for "
        "alpha_prime it collapses towards 0 as D shrinks relative to n because "
        "the largest scales only carry geometric mass.",
        "Both distributions have mean * lambda = Θ(1): they cost the same "
        "energy per active round; the floor is what lets alpha finish each "
        "neighbourhood within an O(log^2 n) window.",
        "The last column shows how much more often alpha plays the largest "
        "scale than alpha_prime does — this is the factor the CR active window "
        "has to compensate for.",
    ]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        columns=columns,
        rows=rows,
        series=series,
        notes=notes,
        parameters={"scale": scale, "pairs": [list(p) for p in pairs]},
    )
