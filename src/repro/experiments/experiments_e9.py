"""E9 — Fig. 1: the distribution α versus the Czumaj–Rytter α′.

The paper's Fig. 1 contrasts the two scale distributions.  This experiment is
deterministic: for a few ``(n, D)`` pairs it tabulates the structural
quantities the Section-4 proofs rely on —

* the probability floor ``min_k α_k`` relative to ``1/(2 log n)`` (the floor
  exists for α, vanishes geometrically for α′);
* the mean transmission probability ``E[2^{-I}]`` relative to ``1/λ`` (both
  distributions spend ``Θ(1/λ)`` per active round);
* the scale-wise domination ``min_k α_k / α′_k`` (the paper states
  ``α_k ≥ α′_k / 2``).

It runs as a probe cell per ``(n, D)`` pair with a single repetition (there
is no randomness to repeat over); the per-scale probability vectors behind
the Fig. 1 series are recomputed in :func:`run` — they are figure payload,
not aggregates.
"""

from __future__ import annotations

import math
from typing import Iterator, List, Optional

import numpy as np

from repro.core.distributions import AlphaDistribution, CzumajRytterDistribution
from repro.experiments.common import pick
from repro.experiments.results import ExperimentResult, Series
from repro.scenarios import ScenarioSpec, SweepCell, SweepGrid, register_probe, run_scenario

EXPERIMENT_ID = "E9"
TITLE = "Fig. 1: the distribution alpha vs the Czumaj-Rytter alpha'"
CLAIM = (
    "Fig. 1 / Section 4.1: alpha keeps probability >= ~1/(2 log n) on every "
    "scale while spending only Theta(1/lambda) expected transmissions per "
    "round; alpha' has the same mean but geometrically vanishing mass on "
    "large scales, and alpha_k >= alpha'_k / 2 scale-wise."
)

METRICS = (
    "lambda",
    "alpha_floor",
    "alpha_mean_lam",
    "alpha_ratio_min",
    "alpha_ratio_last",
    "alpha_prime_floor",
    "alpha_prime_mean_lam",
)


@register_probe("e9.distribution_structure")
def _distribution_probe(params, seed, repetitions) -> Iterator[dict]:
    """Tabulate the structural properties of α and α′ for one (n, D)."""
    n = params["n"]
    diameter = params["diameter"]
    log_n = max(1.0, math.log2(n))
    alpha = AlphaDistribution(n, diameter)
    alpha_prime = CzumajRytterDistribution(n, diameter)

    # Scale-wise ratio over the scales both distributions support (>= 1).
    a = alpha.probabilities[1:]
    ap = alpha_prime.probabilities[1:]
    with np.errstate(divide="ignore"):
        ratios = np.where(ap > 0, a / np.where(ap > 0, ap, 1.0), np.inf)
    yield {
        "lambda": float(alpha.lam),
        "alpha_floor": alpha.min_scale_probability() * 2 * log_n,
        "alpha_mean_lam": alpha.mean_transmission_probability() * alpha.lam,
        "alpha_ratio_min": float(ratios.min()),
        "alpha_ratio_last": float(a[-1] / ap[-1]),
        "alpha_prime_floor": alpha_prime.min_scale_probability() * 2 * log_n,
        "alpha_prime_mean_lam": (
            alpha_prime.mean_transmission_probability() * alpha.lam
        ),
    }


def scenario(scale: str = "quick", seed: int = 0) -> ScenarioSpec:
    """The E9 probe grid: one deterministic cell per (n, D) pair."""
    pairs = pick(
        scale,
        quick=[(1024, 8), (1024, 64), (4096, 64)],
        full=[(1024, 8), (1024, 64), (4096, 16), (4096, 256), (65536, 256), (65536, 4096)],
    )

    cells = [
        SweepCell(
            coords={"n": n, "D": diameter},
            kind="probe",
            probe="e9.distribution_structure",
            params={"n": n, "diameter": diameter},
            repetitions=1,
        )
        for n, diameter in pairs
    ]
    return ScenarioSpec(
        scenario_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        grid=SweepGrid(cells=tuple(cells)),
        metrics=METRICS,
        seed=seed,
        parameters={"scale": scale, "pairs": [list(p) for p in pairs]},
    )


def run(
    scale: str = "quick", seed: int = 0, processes: Optional[int] = None
) -> ExperimentResult:
    """Tabulate the structural properties of α and α′."""
    spec = scenario(scale, seed)
    cells = run_scenario(spec, processes=processes)

    columns = [
        "n",
        "D",
        "lambda",
        "distribution",
        "min_k Pr[k] * 2 log2 n",
        "mean 2^-I * lambda",
        "min_k alpha_k/alpha'_k",
        "largest-scale prob ratio alpha/alpha'",
    ]
    rows: List[List[object]] = []
    series: List[Series] = []

    for cell in cells:
        n = cell.coords["n"]
        diameter = cell.coords["D"]
        lam = cell.mean("lambda")
        rows.append(
            [
                n,
                diameter,
                lam,
                "alpha",
                cell.mean("alpha_floor"),
                cell.mean("alpha_mean_lam"),
                cell.mean("alpha_ratio_min"),
                cell.mean("alpha_ratio_last"),
            ]
        )
        rows.append(
            [
                n,
                diameter,
                lam,
                "alpha_prime",
                cell.mean("alpha_prime_floor"),
                cell.mean("alpha_prime_mean_lam"),
                None,
                None,
            ]
        )
        # The Fig. 1 series payload: per-scale probability vectors
        # (deterministic, recomputed here rather than squeezed through the
        # scalar accumulators).
        alpha = AlphaDistribution(n, diameter)
        alpha_prime = CzumajRytterDistribution(n, diameter)
        series.append(
            Series(
                name=f"alpha probabilities (n={n}, D={diameter})",
                x=list(range(1, alpha.num_scales)),
                y=[float(v) for v in alpha.probabilities[1:]],
                x_label="scale k",
                y_label="Pr[I = k]",
            )
        )
        series.append(
            Series(
                name=f"alpha_prime probabilities (n={n}, D={diameter})",
                x=list(range(1, alpha_prime.num_scales)),
                y=[float(v) for v in alpha_prime.probabilities[1:]],
                x_label="scale k",
                y_label="Pr[I = k]",
            )
        )

    notes = [
        "For alpha the 'min_k Pr[k] * 2 log2 n' column is Θ(1) (the floor); for "
        "alpha_prime it collapses towards 0 as D shrinks relative to n because "
        "the largest scales only carry geometric mass.",
        "Both distributions have mean * lambda = Θ(1): they cost the same "
        "energy per active round; the floor is what lets alpha finish each "
        "neighbourhood within an O(log^2 n) window.",
        "The last column shows how much more often alpha plays the largest "
        "scale than alpha_prime does — this is the factor the CR active window "
        "has to compensate for.",
    ]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        columns=columns,
        rows=rows,
        series=series,
        notes=notes,
        parameters=dict(spec.parameters),
    )
