"""E7 — Observation 4.3: the ``n log n / 2`` total-transmission lower bound.

Claim: there is a network with ``O(n)`` nodes (the relay construction of
Observation 4.3) on which *any* oblivious broadcast algorithm needs at least
``n log n / 2`` transmissions in total to succeed with probability
``1 − 1/n`` — equivalently ``≥ log n / 4`` expected transmissions per relay.

Experiment: on the Observation-4.3 network we run the time-invariant
oblivious protocol with a constant per-round probability ``q`` (the class the
bound quantifies over), sweeping ``q`` over two orders of magnitude, and
measure how many relay transmissions have happened by the time the last
destination is informed.  The lower bound predicts that this count is at
least ``≈ n log n / 2`` **regardless of q** — picking a "better" q cannot
beat it, it only moves time around.
"""

from __future__ import annotations

import math
from typing import List, Optional

import numpy as np

from repro._util.rng import spawn_generators
from repro.core.oblivious import TimeInvariantBroadcast
from repro.experiments.common import pick
from repro.experiments.results import ExperimentResult, Series
from repro.graphs.lowerbound import observation43_network
from repro.radio.engine import SimulationEngine

EXPERIMENT_ID = "E7"
TITLE = "Observation 4.3: total-transmission lower bound on the relay network"
CLAIM = (
    "Observation 4.3: on the 3n+1-node relay network, any oblivious broadcast "
    "algorithm needs at least n*log n/2 transmissions in total (log n/4 per "
    "relay) to complete with probability 1 - 1/n, whatever send probability "
    "it uses."
)


def run(
    scale: str = "quick", seed: int = 0, processes: Optional[int] = None
) -> ExperimentResult:
    """Sweep the per-round probability q and measure relay transmissions at completion."""
    sizes = pick(scale, quick=[32, 64], full=[32, 64, 128, 256])
    repetitions = pick(scale, quick=5, full=20)
    q_values = pick(
        scale,
        quick=[0.5, 0.25, 0.1, 0.02],
        full=[0.5, 0.35, 0.25, 0.15, 0.1, 0.05, 0.02, 0.01],
    )

    columns = [
        "n (destinations)",
        "q",
        "success_rate",
        "rounds (mean)",
        "relay tx at completion (mean)",
        "relay tx / (n log2 n / 2)",
        "tx per relay / (log2 n / 4)",
    ]
    rows: List[List[object]] = []
    series: List[Series] = []

    for n in sizes:
        network, structure = observation43_network(n, return_structure=True)
        log_n = max(1.0, math.log2(n))
        lower_bound_total = n * log_n / 2.0
        xs: List[float] = []
        ys: List[float] = []
        for q in q_values:
            generators = spawn_generators(seed + n, repetitions)
            relay_tx: List[float] = []
            round_counts: List[int] = []
            successes = 0
            # Generous horizon: informing a destination takes ~1/(2q(1-q))
            # rounds, so scale the budget accordingly.
            horizon = int(math.ceil(40.0 * log_n / max(2 * q * (1 - q), 1e-6))) + 10
            for rep in range(repetitions):
                protocol = TimeInvariantBroadcast(q, source=structure.source)
                engine = SimulationEngine(keep_arrays=True)
                result = engine.run(
                    network, protocol, rng=generators[rep], max_rounds=horizon
                )
                successes += int(result.completed)
                if result.completed:
                    round_counts.append(result.completion_round)
                    per_node = result.per_node_transmissions
                    relay_tx.append(float(per_node[structure.relays].sum()))
            if relay_tx:
                mean_relay_tx = float(np.mean(relay_tx))
                mean_rounds = float(np.mean(round_counts))
            else:
                mean_relay_tx = float("nan")
                mean_rounds = float("nan")
            rows.append(
                [
                    n,
                    q,
                    successes / repetitions,
                    mean_rounds,
                    mean_relay_tx,
                    mean_relay_tx / lower_bound_total,
                    (mean_relay_tx / (2 * n)) / (log_n / 4.0),
                ]
            )
            if relay_tx:
                xs.append(float(q))
                ys.append(mean_relay_tx / lower_bound_total)
        series.append(
            Series(
                name=f"relay tx / lower bound (n={n})",
                x=xs,
                y=ys,
                x_label="q",
                y_label="total relay tx / (n log n / 2)",
            )
        )

    notes = [
        "The normalised columns should stay >= Θ(1) for every q: no choice of "
        "send probability pushes the total relay transmissions below the "
        "n*log n/2 bound (the measured constant reflects that completion is "
        "observed at the time the *last* destination succeeds, the same "
        "coupon-collector effect the proof uses).",
    ]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        columns=columns,
        rows=rows,
        series=series,
        notes=notes,
        parameters={
            "scale": scale,
            "sizes": sizes,
            "q_values": q_values,
            "repetitions": repetitions,
            "seed": seed,
        },
    )
