"""E7 — Observation 4.3: the ``n log n / 2`` total-transmission lower bound.

Claim: there is a network with ``O(n)`` nodes (the relay construction of
Observation 4.3) on which *any* oblivious broadcast algorithm needs at least
``n log n / 2`` transmissions in total to succeed with probability
``1 − 1/n`` — equivalently ``≥ log n / 4`` expected transmissions per relay.

Experiment: on the Observation-4.3 network we run the time-invariant
oblivious protocol with a constant per-round probability ``q`` (the class the
bound quantifies over), sweeping ``q`` over two orders of magnitude, and
measure how many relay transmissions have happened by the time the last
destination is informed.  The lower bound predicts that this count is at
least ``≈ n log n / 2`` **regardless of q** — picking a "better" q cannot
beat it, it only moves time around.

The relay-transmission count needs the per-node transmission array sliced by
the construction's relay indices, so the sweep runs as a probe cell per
``(n, q)`` coordinate.
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, List, Optional

from repro._util.rng import spawn_generators
from repro.core.oblivious import TimeInvariantBroadcast
from repro.experiments.common import pick
from repro.experiments.results import ExperimentResult, Series
from repro.graphs.lowerbound import observation43_network
from repro.radio.engine import SimulationEngine
from repro.scenarios import ScenarioSpec, SweepCell, SweepGrid, register_probe, run_scenario

EXPERIMENT_ID = "E7"
TITLE = "Observation 4.3: total-transmission lower bound on the relay network"
CLAIM = (
    "Observation 4.3: on the 3n+1-node relay network, any oblivious broadcast "
    "algorithm needs at least n*log n/2 transmissions in total (log n/4 per "
    "relay) to complete with probability 1 - 1/n, whatever send probability "
    "it uses."
)

METRICS = ("success", "rounds", "relay_tx")


@register_probe("e7.relay_transmissions")
def _relay_tx_probe(params, seed, repetitions) -> Iterator[dict]:
    """Time-invariant broadcast on the relay gadget; count relay transmissions."""
    n = params["n"]
    q = params["q"]
    network, structure = observation43_network(n, return_structure=True)
    log_n = max(1.0, math.log2(n))
    # Generous horizon: informing a destination takes ~1/(2q(1-q))
    # rounds, so scale the budget accordingly.
    horizon = int(math.ceil(40.0 * log_n / max(2 * q * (1 - q), 1e-6))) + 10
    generators = spawn_generators(seed + n, repetitions)
    for rep in range(repetitions):
        protocol = TimeInvariantBroadcast(q, source=structure.source)
        engine = SimulationEngine(keep_arrays=True)
        result = engine.run(network, protocol, rng=generators[rep], max_rounds=horizon)
        sample: Dict[str, object] = {"success": float(result.completed)}
        if result.completed:
            sample["rounds"] = float(result.completion_round)
            sample["relay_tx"] = float(
                result.per_node_transmissions[structure.relays].sum()
            )
        yield sample


def scenario(scale: str = "quick", seed: int = 0) -> ScenarioSpec:
    """The E7 probe grid: n × q."""
    sizes = pick(scale, quick=[32, 64], full=[32, 64, 128, 256])
    repetitions = pick(scale, quick=5, full=20)
    q_values = pick(
        scale,
        quick=[0.5, 0.25, 0.1, 0.02],
        full=[0.5, 0.35, 0.25, 0.15, 0.1, 0.05, 0.02, 0.01],
    )

    def bind(coords: Dict[str, object]) -> SweepCell:
        return SweepCell(
            coords=dict(coords),
            kind="probe",
            probe="e7.relay_transmissions",
            params={"n": coords["n"], "q": coords["q"]},
            repetitions=repetitions,
        )

    grid = SweepGrid.from_axes({"n": sizes, "q": q_values}, bind)
    return ScenarioSpec(
        scenario_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        grid=grid,
        metrics=METRICS,
        seed=seed,
        parameters={
            "scale": scale,
            "sizes": sizes,
            "q_values": q_values,
            "repetitions": repetitions,
            "seed": seed,
        },
    )


def run(
    scale: str = "quick", seed: int = 0, processes: Optional[int] = None
) -> ExperimentResult:
    """Sweep the per-round probability q and measure relay transmissions at completion."""
    spec = scenario(scale, seed)
    cells = run_scenario(spec, processes=processes)

    columns = [
        "n (destinations)",
        "q",
        "success_rate",
        "rounds (mean)",
        "relay tx at completion (mean)",
        "relay tx / (n log2 n / 2)",
        "tx per relay / (log2 n / 4)",
    ]
    rows: List[List[object]] = []
    per_size_series: Dict[int, Series] = {}

    for cell in cells:
        n = cell.coords["n"]
        q = cell.coords["q"]
        log_n = max(1.0, math.log2(n))
        lower_bound_total = n * log_n / 2.0
        mean_relay_tx = cell.mean("relay_tx")
        mean_rounds = cell.mean("rounds")
        if mean_relay_tx is None:
            mean_relay_tx = float("nan")
            mean_rounds = float("nan")
        rows.append(
            [
                n,
                q,
                cell.success_rate,
                mean_rounds,
                mean_relay_tx,
                mean_relay_tx / lower_bound_total,
                (mean_relay_tx / (2 * n)) / (log_n / 4.0),
            ]
        )
        series = per_size_series.setdefault(
            n,
            Series(
                name=f"relay tx / lower bound (n={n})",
                x=[],
                y=[],
                x_label="q",
                y_label="total relay tx / (n log n / 2)",
            ),
        )
        if cell.count("relay_tx"):
            series.x.append(float(q))
            series.y.append(mean_relay_tx / lower_bound_total)

    notes = [
        "The normalised columns should stay >= Θ(1) for every q: no choice of "
        "send probability pushes the total relay transmissions below the "
        "n*log n/2 bound (the measured constant reflects that completion is "
        "observed at the time the *last* destination succeeds, the same "
        "coupon-collector effect the proof uses).",
    ]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        columns=columns,
        rows=rows,
        series=list(per_size_series.values()),
        notes=notes,
        parameters=dict(spec.parameters),
    )
