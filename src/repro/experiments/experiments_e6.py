"""E6 — Theorem 4.2: the time/energy tradeoff family.

Claim: for ``log(n/D) ≤ λ ≤ log n``, the λ-parameterised variant of
Algorithm 3 broadcasts in ``O(D λ + log² n)`` rounds with ``O(log² n / λ)``
transmissions per node.  Sweeping λ on a fixed network should therefore trace
a frontier along which measured time grows (roughly linearly in λ once the
``D λ`` term dominates) while measured energy shrinks like ``1/λ``.
"""

from __future__ import annotations

import math
from typing import List, Optional

import numpy as np

from repro.core.tradeoff import admissible_lambda_range
from repro.experiments.common import log2n, pick, stat_mean
from repro.experiments.protocols import ProtocolSpec
from repro.experiments.results import ExperimentResult, Series
from repro.experiments.runner import aggregate_runs, repeat_job
from repro.graphs.builders import GraphSpec, build_network
from repro.graphs.properties import source_eccentricity

EXPERIMENT_ID = "E6"
TITLE = "Theorem 4.2 time/energy tradeoff (lambda sweep)"
CLAIM = (
    "Theorem 4.2: for log(n/D) <= lambda <= log n, broadcasting finishes in "
    "O(D*lambda + log^2 n) rounds with O(log^2 n / lambda) transmissions per "
    "node — increasing lambda trades time for energy."
)


def run(
    scale: str = "quick", seed: int = 0, processes: Optional[int] = None
) -> ExperimentResult:
    """Sweep λ on a fixed path-of-cliques network."""
    if scale == "quick":
        spec = GraphSpec("path_of_cliques", {"num_cliques": 12, "clique_size": 12})
        num_lambdas = 4
        repetitions = 3
    else:
        spec = GraphSpec("path_of_cliques", {"num_cliques": 20, "clique_size": 16})
        num_lambdas = 7
        repetitions = 10

    network = build_network(spec, rng=seed)
    n = network.n
    diameter = source_eccentricity(network, 0)
    lam_low, lam_high = admissible_lambda_range(n, diameter)
    lambdas = np.linspace(lam_low, lam_high, num_lambdas)

    columns = [
        "lambda",
        "success_rate",
        "rounds (mean)",
        "rounds / (D*lambda + log^2 n)",
        "mean tx/node",
        "mean tx/node * lambda / log^2 n",
    ]
    rows: List[List[object]] = []
    time_series = Series(
        name="completion rounds vs lambda", x=[], y=[], x_label="lambda", y_label="rounds"
    )
    energy_series = Series(
        name="mean tx/node vs lambda", x=[], y=[], x_label="lambda", y_label="tx per node"
    )

    for lam in lambdas:
        runs = repeat_job(
            spec,
            ProtocolSpec("tradeoff", {"diameter": diameter, "lam": float(lam)}),
            repetitions=repetitions,
            seed=seed,
            processes=processes,
            run_to_quiescence=True,
        )
        agg = aggregate_runs(runs)
        rounds_mean = stat_mean(agg.get("completion_rounds"))
        mean_tx = stat_mean(agg["mean_tx_per_node"])
        bound = diameter * lam + log2n(n) ** 2
        rows.append(
            [
                float(lam),
                agg["success_rate"],
                rounds_mean,
                (rounds_mean / bound) if rounds_mean is not None else None,
                mean_tx,
                mean_tx * lam / (log2n(n) ** 2),
            ]
        )
        if rounds_mean is not None:
            time_series.x.append(float(lam))
            time_series.y.append(rounds_mean)
        energy_series.x.append(float(lam))
        energy_series.y.append(mean_tx)

    notes = [
        f"workload: {spec.describe()} with n={n}, D={diameter}, admissible "
        f"lambda range [{lam_low:.2f}, {lam_high:.2f}]",
        "Expected shape: the energy column decreases roughly like 1/lambda "
        "while the time column grows once D*lambda dominates log^2 n.",
    ]
    if len(energy_series.y) >= 2 and energy_series.y[0] > 0:
        notes.append(
            "measured energy reduction from smallest to largest lambda: "
            f"{energy_series.y[0] / max(energy_series.y[-1], 1e-9):.2f}x "
            f"(lambda grew by {lambdas[-1] / lambdas[0]:.2f}x)"
        )

    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        columns=columns,
        rows=rows,
        series=[time_series, energy_series],
        notes=notes,
        parameters={
            "scale": scale,
            "workload": spec.as_dict(),
            "repetitions": repetitions,
            "seed": seed,
        },
    )
