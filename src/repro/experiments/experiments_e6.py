"""E6 — Theorem 4.2: the time/energy tradeoff family.

Claim: for ``log(n/D) ≤ λ ≤ log n``, the λ-parameterised variant of
Algorithm 3 broadcasts in ``O(D λ + log² n)`` rounds with ``O(log² n / λ)``
transmissions per node.  Sweeping λ on a fixed network should therefore trace
a frontier along which measured time grows (roughly linearly in λ once the
``D λ`` term dominates) while measured energy shrinks like ``1/λ``.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.tradeoff import admissible_lambda_range
from repro.experiments.common import log2n
from repro.experiments.protocols import ProtocolSpec
from repro.experiments.results import ExperimentResult, Series
from repro.graphs.builders import GraphSpec, build_network
from repro.graphs.properties import source_eccentricity
from repro.scenarios import ScenarioSpec, SweepCell, SweepGrid, run_scenario

EXPERIMENT_ID = "E6"
TITLE = "Theorem 4.2 time/energy tradeoff (lambda sweep)"
CLAIM = (
    "Theorem 4.2: for log(n/D) <= lambda <= log n, broadcasting finishes in "
    "O(D*lambda + log^2 n) rounds with O(log^2 n / lambda) transmissions per "
    "node — increasing lambda trades time for energy."
)

METRICS = ("success", "completion_round", "mean_tx_per_node")


def scenario(scale: str = "quick", seed: int = 0) -> ScenarioSpec:
    """The E6 grid: a λ axis on a fixed path-of-cliques workload."""
    if scale == "quick":
        graph_spec = GraphSpec("path_of_cliques", {"num_cliques": 12, "clique_size": 12})
        num_lambdas = 4
        repetitions = 3
    else:
        graph_spec = GraphSpec("path_of_cliques", {"num_cliques": 20, "clique_size": 16})
        num_lambdas = 7
        repetitions = 10

    network = build_network(graph_spec, rng=seed)
    n = network.n
    diameter = source_eccentricity(network, 0)
    lam_low, lam_high = admissible_lambda_range(n, diameter)
    lambdas = np.linspace(lam_low, lam_high, num_lambdas)

    def bind(coords):
        lam = coords["lambda"]
        return SweepCell(
            coords={"lambda": lam, "n": n, "D": diameter},
            graph=graph_spec,
            protocol=ProtocolSpec("tradeoff", {"diameter": diameter, "lam": lam}),
            repetitions=repetitions,
            job_options={"run_to_quiescence": True},
        )

    grid = SweepGrid.from_axes({"lambda": [float(lam) for lam in lambdas]}, bind)
    return ScenarioSpec(
        scenario_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        grid=grid,
        metrics=METRICS,
        seed=seed,
        parameters={
            "scale": scale,
            "workload": graph_spec.as_dict(),
            "repetitions": repetitions,
            "seed": seed,
            "lambda_range": [float(lam_low), float(lam_high)],
        },
    )


def run(
    scale: str = "quick", seed: int = 0, processes: Optional[int] = None
) -> ExperimentResult:
    """Sweep λ on a fixed path-of-cliques network."""
    spec = scenario(scale, seed)
    cells = run_scenario(spec, processes=processes)

    columns = [
        "lambda",
        "success_rate",
        "rounds (mean)",
        "rounds / (D*lambda + log^2 n)",
        "mean tx/node",
        "mean tx/node * lambda / log^2 n",
    ]
    rows: List[List[object]] = []
    time_series = Series(
        name="completion rounds vs lambda", x=[], y=[], x_label="lambda", y_label="rounds"
    )
    energy_series = Series(
        name="mean tx/node vs lambda", x=[], y=[], x_label="lambda", y_label="tx per node"
    )

    for cell in cells:
        lam = cell.coords["lambda"]
        n = cell.coords["n"]
        diameter = cell.coords["D"]
        rounds_mean = cell.mean("completion_round")
        mean_tx = cell.mean("mean_tx_per_node")
        bound = diameter * lam + log2n(n) ** 2
        rows.append(
            [
                float(lam),
                cell.success_rate,
                rounds_mean,
                (rounds_mean / bound) if rounds_mean is not None else None,
                mean_tx,
                mean_tx * lam / (log2n(n) ** 2),
            ]
        )
        if rounds_mean is not None:
            time_series.x.append(float(lam))
            time_series.y.append(rounds_mean)
        energy_series.x.append(float(lam))
        energy_series.y.append(mean_tx)

    first_cell = cells[0]
    lam_low, lam_high = spec.parameters["lambda_range"]
    lambdas = [cell.coords["lambda"] for cell in cells]
    notes = [
        f"workload: {first_cell.cell.graph.describe()} with "
        f"n={first_cell.coords['n']}, D={first_cell.coords['D']}, admissible "
        f"lambda range [{lam_low:.2f}, {lam_high:.2f}]",
        "Expected shape: the energy column decreases roughly like 1/lambda "
        "while the time column grows once D*lambda dominates log^2 n.",
    ]
    if len(energy_series.y) >= 2 and energy_series.y[0] > 0:
        notes.append(
            "measured energy reduction from smallest to largest lambda: "
            f"{energy_series.y[0] / max(energy_series.y[-1], 1e-9):.2f}x "
            f"(lambda grew by {lambdas[-1] / lambdas[0]:.2f}x)"
        )

    parameters = {
        key: value
        for key, value in spec.parameters.items()
        if key != "lambda_range"
    }
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        columns=columns,
        rows=rows,
        series=[time_series, energy_series],
        notes=notes,
        parameters=parameters,
    )
