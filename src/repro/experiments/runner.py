"""Unified job execution: one pipeline composing batching and process fan-out.

A :class:`Job` is a fully declarative description of one protocol run
(topology spec + protocol spec + seed + engine options), so a list of jobs
can be executed serially or handed to a :class:`concurrent.futures.
ProcessPoolExecutor` — each worker rebuilds the network and protocol from the
specs, keeping results independent of scheduling (the per-job seed fully
determines both the topology sample and the protocol's randomness).

Repetition sweeps (the workload behind every experiment E1–E16) go through an
:class:`ExecutionPlan`, which composes the two execution axes instead of
treating them as alternatives:

* **batching** — every registered protocol has a batched implementation
  (``BATCH_PROTOCOL_FACTORIES`` covers ``PROTOCOL_FACTORIES`` completely), so
  by default all ``R`` repetitions advance together through the
  :class:`~repro.radio.batch.BatchEngine` on stacked ``(R, n)`` state;
* **process fan-out** — ``processes=K`` shards the ``R`` per-trial seeds into
  ``K`` contiguous chunks, each worker running its chunk as its own
  :class:`~repro.radio.batch.NetworkBatch` (batching *within* each worker),
  rather than falling back to one-job-per-worker serial execution.

Per-trial seeds are spawned identically on every path, so the sampled
topologies — and, in ``batch_mode="exact"``, the full traces bit for bit —
are independent of how the sweep was scheduled.

Sweeps are **resumable**: when a :class:`~repro.store.ResultStore` is
attached (per call, or process-wide via :func:`configure_execution`, or the
CLI's ``--resume`` / ``--cache-dir`` flags), every per-trial result is
checkpointed under a canonical content digest as its shard completes, and
:func:`repeat_job` / :func:`run_jobs` consult the store first — only the
missing trials are enqueued.  In ``batch_mode="exact"`` a resumed sweep is
bit-identical to an uninterrupted one, because each trial's bits are a pure
function of its job spec and seed.  Work is dispatched through the
:class:`~repro.jobs.JobQueue` abstraction (in-process or a process pool with
retry-on-worker-death), so later backends can slot in without touching the
planner.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro import telemetry
from repro._util.rng import spawn_generators
from repro.analysis.statistics import summarize
from repro.experiments.protocols import (
    BATCH_PROTOCOL_FACTORIES,
    ProtocolSpec,
    build_batch_protocol,
    build_protocol,
    supports_batch,
)
from repro.graphs.builders import GraphSpec, build_network, spec_is_deterministic
from repro.jobs import InProcessBackend, JobQueue
from repro.radio.batch import BatchEngine, NetworkBatch, PendingTrial
from repro.radio.kernels import resolve_collision_kernel
from repro.radio.network import RadioNetwork
from repro.radio.nodesets import STATE_BACKENDS
from repro.radio.collision import (
    BatchCollisionModel,
    BatchErasureCollisionModel,
    BatchStandardCollisionModel,
    BatchWithCollisionDetectionModel,
    CollisionModel,
    ErasureCollisionModel,
    StandardCollisionModel,
    WithCollisionDetectionModel,
)
from repro.radio.engine import SimulationEngine
from repro.radio.environment import (
    build_batch_environment,
    build_environment,
    validate_environment_spec,
)
from repro.radio.trace import RunResultTrace
from repro.store import ResultStore, canonicalize, trial_digest

__all__ = [
    "Job",
    "ExecutionPlan",
    "build_repetition_plan",
    "configure_execution",
    "execute_job",
    "run_jobs",
    "aggregate_runs",
    "repeat_job",
    "job_store_key",
]

_COLLISION_MODELS = {
    "standard": StandardCollisionModel,
    "collision_detection": WithCollisionDetectionModel,
}

_BATCH_COLLISION_MODELS = {
    "standard": BatchStandardCollisionModel,
    "collision_detection": BatchWithCollisionDetectionModel,
}


@dataclass(frozen=True)
class Job:
    """One fully specified protocol run."""

    graph: GraphSpec
    protocol: ProtocolSpec
    seed: int
    run_to_quiescence: bool = False
    record_rounds: bool = False
    keep_arrays: bool = False
    max_rounds: Optional[int] = None
    collision_model: str = "standard"
    erasure_probability: float = 0.0
    environment: Optional[Dict[str, object]] = None
    label: str = ""

    def as_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "graph": self.graph.as_dict(),
            "protocol": self.protocol.as_dict(),
            "seed": self.seed,
            "run_to_quiescence": self.run_to_quiescence,
            "record_rounds": self.record_rounds,
            "keep_arrays": self.keep_arrays,
            "max_rounds": self.max_rounds,
            "collision_model": self.collision_model,
            "erasure_probability": self.erasure_probability,
            "label": self.label,
        }
        # Only faulty-world jobs carry the key, so every digest computed
        # before the environment axis existed stays valid.
        if self.environment is not None:
            out["environment"] = dict(self.environment)
        return out


def _collision_model_for(job: Job) -> CollisionModel:
    if job.erasure_probability > 0.0:
        return ErasureCollisionModel(job.erasure_probability)
    try:
        return _COLLISION_MODELS[job.collision_model]()
    except KeyError:
        known = ", ".join(sorted(_COLLISION_MODELS))
        raise ValueError(
            f"unknown collision model {job.collision_model!r}; known: {known}"
        )


def execute_job(job: Job) -> RunResultTrace:
    """Build the network and protocol from the job's specs and run once.

    Two independent generator streams are spawned from the job seed: one for
    the topology sample, one for the protocol/engine randomness — so e.g.
    comparing two protocols with the same seed uses the *same* sampled
    network.
    """
    graph_rng, protocol_rng = spawn_generators(job.seed, 2)
    network = build_network(job.graph, rng=graph_rng)
    protocol = build_protocol(job.protocol)
    engine = SimulationEngine(
        _collision_model_for(job),
        record_rounds=job.record_rounds,
        keep_arrays=job.keep_arrays,
        run_to_quiescence=job.run_to_quiescence,
        environment=build_environment(job.environment),
    )
    result = engine.run(network, protocol, rng=protocol_rng, max_rounds=job.max_rounds)
    result.metadata.setdefault("job", job.as_dict())
    if job.label:
        result.metadata["label"] = job.label
    return result


def _worker_count(processes: Optional[int], task_count: int) -> int:
    """Resolve a ``processes`` argument into an actual worker count."""
    if processes is None:
        return 1
    workers = processes if processes > 0 else (os.cpu_count() or 1)
    return max(1, min(workers, task_count))


# --------------------------------------------------------------------------- #
# Result-store plumbing
# --------------------------------------------------------------------------- #
#: Per-completion callback used to checkpoint results: ``sink(index, trace)``.
_ResultSink = Callable[[int, RunResultTrace], None]


def job_store_key(job: Job, context: Dict[str, object]) -> str:
    """The content digest a job's result is stored under.

    ``context`` carries the execution facts that affect the result bits on
    top of the job spec itself — the randomness policy (``batch_mode``), the
    node-set ``state_backend`` knob and, in fast mode, the cohort entropy
    (see :meth:`ExecutionPlan.cache_context`).  The job's ``label`` is
    display metadata and deliberately excluded, so relabelled sweeps still
    dedup.
    """
    payload = job.as_dict()
    payload.pop("label", None)
    return trial_digest({"job": payload, "context": dict(context)})


def _trace_store_payload(trace: RunResultTrace) -> dict:
    """What the store records for a trial: the full-fidelity payload minus
    the requesting job's display metadata (re-attached on rehydration)."""
    payload = trace.to_payload()
    metadata = dict(payload.get("metadata", {}))
    metadata.pop("job", None)
    metadata.pop("label", None)
    payload["metadata"] = metadata
    return canonicalize(payload)


def _rehydrate_trace(payload: dict, job: Job) -> RunResultTrace:
    """Rebuild a cached trial and re-attach the requesting job's metadata."""
    trace = RunResultTrace.from_payload(payload)
    trace.metadata["job"] = job.as_dict()
    if job.label:
        trace.metadata["label"] = job.label
    return trace


def _store_sink(store: ResultStore, keys: Sequence[str]) -> _ResultSink:
    """A sink writing each completed trace under its precomputed key."""

    def sink(index: int, trace: RunResultTrace) -> None:
        store.put(keys[index], _trace_store_payload(trace))

    return sink


def _consult_store(
    store: ResultStore,
    jobs: Sequence[Job],
    keys: Sequence[str],
    run_missing: Callable[[List[int], _ResultSink], List[RunResultTrace]],
    *,
    all_or_nothing: bool = False,
) -> List[RunResultTrace]:
    """The cache-consultation protocol shared by :func:`run_jobs` and
    :meth:`ExecutionPlan.execute`: probe every key, rehydrate the hits,
    execute the missing jobs with a sink that checkpoints each completion
    under its key, and merge everything back in job order.

    ``all_or_nothing`` discards a *partial* hit set (fast-mode sweeps, whose
    draws are cohort-wide) — the discarded probes are reclassified as misses
    so the store counters report what was actually served.
    """
    results: Dict[int, RunResultTrace] = {}
    for index, key in enumerate(keys):
        payload = store.get(key)
        if payload is not None:
            results[index] = _rehydrate_trace(payload, jobs[index])
    if all_or_nothing and results and len(results) != len(jobs):
        store.hits -= len(results)
        store.misses += len(results)
        if telemetry.enabled():
            telemetry.counter_inc("store.hits", -len(results))
            telemetry.counter_inc("store.misses", len(results))
        results = {}
    missing = [index for index in range(len(jobs)) if index not in results]
    if missing:
        fresh = run_missing(
            missing, _store_sink(store, [keys[index] for index in missing])
        )
        for index, trace in zip(missing, fresh):
            results[index] = trace
    return [results[index] for index in range(len(jobs))]


def _resolve_store(store) -> Optional[ResultStore]:
    """Resolve a ``store`` argument: ``None`` means the process-wide default
    (:func:`configure_execution`), ``False`` disables caching explicitly, a
    path opens a :class:`~repro.store.ResultStore` there."""
    if store is None:
        return _EXECUTION_DEFAULTS.store
    if store is False:
        return None
    if isinstance(store, (str, Path)):
        return ResultStore(store)
    return store


def _run_jobs_queued(
    jobs: Sequence[Job],
    *,
    processes: Optional[int] = None,
    queue: Optional[JobQueue] = None,
    sink: Optional[_ResultSink] = None,
    collect: bool = True,
) -> List[RunResultTrace]:
    """One engine run per job through the job queue (no store consultation)."""
    jobs = list(jobs)
    workers = _worker_count(processes, len(jobs))
    if queue is None:
        queue = JobQueue.for_workers(workers)
    # A computed chunksize (instead of the default 1) amortises the per-item
    # pickle/IPC round trip on large sweeps while still keeping ~4 chunks per
    # worker for load balancing.
    chunksize = max(1, len(jobs) // (4 * workers)) if workers > 1 else 1
    return queue.run(
        execute_job, jobs, on_result=sink, chunksize=chunksize, collect=collect
    )


#: Cache context of the serial per-run engine path.  Serial runs are keyed
#: separately from batched ones (conservative: the exact-mode equivalence the
#: tests pin covers the trace's headline fields, and keying by path costs
#: only a recompute, never a wrong hit).
_SERIAL_CONTEXT: Dict[str, object] = {
    "batch_mode": "serial",
    "state_backend": "auto",
}


def run_jobs(
    jobs: Sequence[Job],
    *,
    processes: Optional[int] = None,
    store=None,
    queue: Optional[JobQueue] = None,
) -> List[RunResultTrace]:
    """Execute ``jobs`` one engine run per job, serially or across workers.

    ``processes=None`` (default) runs serially; pass an integer (or 0 for
    ``os.cpu_count()``) to fan out.  This is the heterogeneous-job path —
    repetition sweeps should go through :func:`repeat_job` /
    :class:`ExecutionPlan`, which batch the repetition axis as well.

    ``store`` selects the content-addressed result store consulted before
    executing anything (``None``: the process-wide default, ``False``:
    disabled, or a :class:`~repro.store.ResultStore` / path): cached jobs
    are returned without touching the engine and fresh results are
    checkpointed as they complete.  ``queue`` overrides the
    :class:`~repro.jobs.JobQueue` work is dispatched through.
    """
    jobs = list(jobs)
    resolved = _resolve_store(store)
    if resolved is None:
        return _run_jobs_queued(jobs, processes=processes, queue=queue)

    def run_missing(missing: List[int], sink: _ResultSink) -> List[RunResultTrace]:
        return _run_jobs_queued(
            [jobs[index] for index in missing],
            processes=processes,
            queue=queue,
            sink=sink,
        )

    keys = [job_store_key(job, _SERIAL_CONTEXT) for job in jobs]
    return _consult_store(resolved, jobs, keys, run_missing)


@dataclass(frozen=True)
class _ExecutionDefaults:
    """Process-wide defaults for the batch axis of :class:`ExecutionPlan`."""

    batch: Union[bool, str] = True
    batch_mode: str = "fast"
    state_backend: str = "auto"
    kernel: str = "auto"
    store: Optional[ResultStore] = None
    environment: Optional[Dict[str, object]] = None
    compaction: str = "auto"
    watermark: float = 0.75


_EXECUTION_DEFAULTS = _ExecutionDefaults()

#: Sentinel distinguishing "leave unchanged" from "set to None (disable)".
_UNSET = object()


def configure_execution(
    *,
    batch: Union[bool, str, None] = None,
    batch_mode: Optional[str] = None,
    state_backend: Optional[str] = None,
    kernel: Optional[str] = None,
    store=_UNSET,
    environment=_UNSET,
    compaction: Optional[str] = None,
    watermark: Optional[float] = None,
) -> None:
    """Set process-wide execution defaults (the CLI's ``--no-batch`` /
    ``--batch-mode`` / ``--state-backend`` / ``--kernel`` / cache flags land
    here).

    ``repeat_job`` / :class:`ExecutionPlan` use these whenever the caller
    does not pass ``batch`` / ``batch_mode`` / ``state_backend`` /
    ``kernel`` explicitly, so the whole experiment suite can be switched to
    serial, exact-mode, a forced node-set state backend or a specific
    collision kernel without threading flags through every experiment
    module.

    ``store`` installs the process-wide content-addressed result store the
    sweeps consult (a :class:`~repro.store.ResultStore`, a cache-dir path,
    or ``None`` to disable caching); omit the argument to leave the current
    store unchanged.

    ``environment`` installs a process-wide faulty-world environment spec
    (the CLI's ``--env`` flag lands here): every job built without its own
    ``environment`` job option then runs under it.  Pass ``None`` to
    disable; omit the argument to leave the current default unchanged.

    ``compaction`` / ``watermark`` steer the continuous-batching path (the
    CLI's ``--compaction`` / ``--watermark`` flags land here): see
    :class:`ExecutionPlan` for the ``"auto"`` / ``"on"`` / ``"off"``
    semantics and the occupancy watermark.
    """
    global _EXECUTION_DEFAULTS
    updates: Dict[str, object] = {}
    if batch is not None:
        updates["batch"] = batch
    if batch_mode is not None:
        updates["batch_mode"] = batch_mode
    if state_backend is not None:
        updates["state_backend"] = state_backend
    if compaction is not None:
        if compaction not in ("auto", "on", "off"):
            raise ValueError(
                f"compaction must be 'auto', 'on' or 'off', got {compaction!r}"
            )
        updates["compaction"] = compaction
    if watermark is not None:
        if not 0.0 < watermark <= 1.0:
            raise ValueError(f"watermark must be in (0, 1], got {watermark}")
        updates["watermark"] = float(watermark)
    if kernel is not None:
        # Validate eagerly (mode-independent checks only) so a typo fails at
        # configuration time, not on the first sweep.
        resolve_collision_kernel(kernel)
        updates["kernel"] = kernel
    if store is not _UNSET:
        if isinstance(store, (str, Path)):
            store = ResultStore(store)
        updates["store"] = store
    if environment is not _UNSET:
        updates["environment"] = validate_environment_spec(environment)
    _EXECUTION_DEFAULTS = replace(_EXECUTION_DEFAULTS, **updates)


@dataclass(frozen=True)
class _BatchShard:
    """One worker's contiguous slice of a batched repetition sweep."""

    jobs: Tuple[Job, ...]
    mode: str
    fast_seed: Optional[np.random.SeedSequence]
    state_backend: str = "auto"
    kernel: str = "auto"
    #: Plan-level topology cache: for deterministic graph families every
    #: job's sample is the same network, so the plan builds it once and every
    #: shard (and every trial within a shard) shares the object instead of
    #: rebuilding it per job.  ``None`` for random families, whose per-trial
    #: samples are (deliberately) distinct.
    shared_network: Optional[RadioNetwork] = None
    #: Stacked-CSR reuse on top of the topology cache: in-process plans also
    #: share the *tiled* :class:`NetworkBatch` across equally-sized shards,
    #: so a 64-shard resumable sweep builds the block-diagonal CSR once
    #: instead of 64 times.  ``None`` when fan-out would have to pickle the
    #: stacked arrays to worker processes (rebuilding there is cheaper).
    shared_batch: Optional[NetworkBatch] = None
    #: Telemetry/diagnostic name (``shard[k]:<cell digest prefix>``) set by
    #: the plan; doubles as the queue task label and the shard span name.
    label: str = ""


def _execute_batch_shard(
    shard: _BatchShard, result_sink: Optional[_ResultSink] = None
) -> List[RunResultTrace]:
    """Run one shard's jobs as a single :class:`NetworkBatch` through the
    batch engine.  Runs in the parent (single shard) or a worker process
    (sharded fan-out); everything it needs is picklable.

    ``result_sink`` streams each trial's trace (with its job metadata
    attached) out as results are assembled; the return value is then empty
    and the shard never materialises its full trace list.
    """
    if not telemetry.enabled():
        return _execute_batch_shard_impl(shard, result_sink)
    with telemetry.span(
        "shard",
        shard.label or "shard",
        trials=len(shard.jobs),
        mode=shard.mode,
    ):
        return _execute_batch_shard_impl(shard, result_sink)


def _execute_batch_shard_traced(shard: _BatchShard):
    """Process-fan-out wrapper: run the shard under a telemetry capture and
    return ``(results, telemetry_payload)``.

    Workers cannot reach the parent's sink, so their spans/events/counters
    buffer in-process and ride home on the existing per-completion result
    channel; the parent's ``on_result`` callback ingests the payload tagged
    with the shard's cell-digest label (see :meth:`ExecutionPlan._run`).
    Only dispatched when the parent had telemetry enabled.
    """
    with telemetry.capture(shard.label or "shard") as captured:
        results = _execute_batch_shard(shard)
    return results, captured.payload()


def _execute_batch_shard_impl(
    shard: _BatchShard, result_sink: Optional[_ResultSink] = None
) -> List[RunResultTrace]:
    jobs = shard.jobs
    template = jobs[0]
    collision_model = _batch_collision_model_for(template)

    networks: Union[NetworkBatch, List[RadioNetwork]] = []
    protocol_rngs = []
    for job in jobs:
        # The graph stream is spawned even when the cached topology makes it
        # unused, so the protocol stream stays identical on every path.
        graph_rng, protocol_rng = spawn_generators(job.seed, 2)
        if isinstance(networks, list):
            if shard.shared_network is not None:
                networks.append(shard.shared_network)
            else:
                networks.append(build_network(job.graph, rng=graph_rng))
        protocol_rngs.append(protocol_rng)
    if shard.shared_batch is not None:
        networks = shard.shared_batch

    engine = BatchEngine(
        collision_model,
        record_rounds=template.record_rounds,
        keep_arrays=template.keep_arrays,
        run_to_quiescence=template.run_to_quiescence,
        state_backend=shard.state_backend,
        environment=build_batch_environment(template.environment),
        kernel=shard.kernel,
    )
    protocol = build_batch_protocol(template.protocol)

    def decorate(trial: int, result: RunResultTrace) -> RunResultTrace:
        job = jobs[trial]
        result.metadata.setdefault("job", job.as_dict())
        if job.label:
            result.metadata["label"] = job.label
        return result

    engine_sink: Optional[_ResultSink] = None
    if result_sink is not None:

        def engine_sink(trial: int, result: RunResultTrace) -> None:
            result_sink(trial, decorate(trial, result))

    if shard.mode == "exact":
        results = engine.run(
            networks,
            protocol,
            rngs=protocol_rngs,
            max_rounds=template.max_rounds,
            result_sink=engine_sink,
        )
    else:
        results = engine.run(
            networks,
            protocol,
            rng=np.random.default_rng(shard.fast_seed),
            max_rounds=template.max_rounds,
            result_sink=engine_sink,
        )
    for trial, result in enumerate(results):
        decorate(trial, result)
    return results


def _batch_collision_model_for(job: Job) -> Optional[BatchCollisionModel]:
    if job.erasure_probability > 0.0:
        return BatchErasureCollisionModel(job.erasure_probability)
    factory = _BATCH_COLLISION_MODELS.get(job.collision_model)
    return factory() if factory is not None else None


@dataclass(frozen=True)
class ExecutionPlan:
    """How a homogeneous repetition sweep is executed.

    The plan composes the two execution axes — batching and process fan-out —
    instead of treating them as mutually exclusive:

    ========== ============= =================================================
    ``batch``  ``processes`` execution
    ========== ============= =================================================
    truthy     ``None``      one :class:`~repro.radio.batch.NetworkBatch` of
                             all ``R`` trials, in process
    truthy     ``K``         ``R`` seeds sharded into ``K`` contiguous chunks;
                             each worker runs its chunk as its own batch
    ``False``  ``None``      serial loop, one engine run per job
    ``False``  ``K``         one-job-per-worker serial fan-out
    ========== ============= =================================================

    ``batch`` may also be the string ``"require"``: batch like ``True`` but
    raise instead of silently falling back when the sweep is not batchable
    (unknown collision model, or — should the registries ever diverge again —
    a protocol without a batched implementation), so a caller counting on
    batch throughput finds out instead of quietly running ~10x slower.

    ``batch_mode`` selects the randomness policy of the batched path:
    ``"fast"`` (one shared generator per shard, vectorised draws —
    statistically identical to serial) or ``"exact"`` (one child generator
    per trial, consumed exactly as the serial engine would — bit-identical
    to serial, regardless of sharding).

    ``state_backend`` selects the node-set state representation of the batch
    engine (``"auto"`` / ``"dense"`` / ``"bitset"`` / ``"sparse"``, see
    :mod:`repro.radio.nodesets`); results are identical under every backend
    (bit-identical in exact mode), so this is purely a space/time knob.

    ``kernel`` selects the collision-kernel implementation
    (:data:`repro.radio.kernels.COLLISION_KERNELS`): ``"auto"`` (default)
    runs the compiled kernel when numba is importable and the bit-identical
    numpy path otherwise, ``"numpy"`` / ``"compiled"`` force a side,
    and ``"edge_sampled"`` opts into the O(R·n) mean-field approximation
    for edge-bound graphs — fast mode only (the plan rejects it under
    ``batch_mode="exact"`` at construction), stamped into trace metadata
    and into the sweep's store digests.  The exact kernels all share one
    digest space, so flipping between them never invalidates a cache.

    Deterministic graph families (paths, grids, the lower-bound gadgets …)
    sample to the same network under every seed, so the plan builds that
    topology **once** and hands every shard a shared view instead of
    rebuilding it per job; random families keep their per-trial samples.

    ``store`` attaches a content-addressed result store: cached trials are
    returned without touching the engine, missing trials are executed and
    checkpointed shard by shard as they complete (so an interrupted sweep
    resumes where it died).  In exact mode each trial's bits are a pure
    function of its job spec + seed, making resumption bit-identical to an
    uninterrupted run; in fast mode the rng streams are cohort-wide, so the
    cache is all-or-nothing (a partial hit recomputes the whole sweep rather
    than silently changing the draws).

    ``queue`` overrides the :class:`~repro.jobs.JobQueue` shards are
    dispatched through (default: in-process for one worker, a process pool
    with retry-on-worker-death otherwise), and ``shard_count`` decouples the
    number of shards from the worker count — more shards mean finer resume
    checkpoints and better load balancing at a small per-shard overhead.

    ``compaction`` selects the continuous-batching execution of the batched
    in-process path (:meth:`~repro.radio.batch.BatchEngine.run_continuous`):
    completed and dead trials retire the round they stop, the live batch is
    compacted when occupancy drops below ``watermark * capacity``, and freed
    rows refill with pending trials — so a sweep whose completion rounds
    vary widely stops being billed for its slowest trial's horizon.
    ``"auto"`` (the default) engages it for in-process exact-mode sweeps,
    where every trial is bit-identical to the sharded path; ``"on"`` forces
    it whenever it can run (fast mode then draws from a different — still
    deterministic — stream than the sharded fast path, so force it only on
    storeless throughput runs) and raises when it cannot; ``"off"`` keeps
    the sharded path.  Compaction is an execution detail, not a result
    axis: it never changes store digests.

    The jobs must be a homogeneous sweep: same specs and engine options,
    differing only in seed/label (what :func:`repeat_job` builds).
    """

    jobs: Tuple[Job, ...]
    processes: Optional[int] = None
    batch: Union[bool, str] = True
    batch_mode: str = "fast"
    fast_seed: Optional[np.random.SeedSequence] = None
    state_backend: str = "auto"
    kernel: str = "auto"
    store: Optional[ResultStore] = None
    queue: Optional[JobQueue] = None
    shard_count: Optional[int] = None
    compaction: str = "auto"
    watermark: float = 0.75

    def __post_init__(self) -> None:
        if not self.jobs:
            raise ValueError("ExecutionPlan needs at least one job")
        if self.batch not in (True, False, "require"):
            raise ValueError(
                f"batch must be True, False or 'require', got {self.batch!r}"
            )
        if self.batch_mode not in ("fast", "exact"):
            raise ValueError(
                f"batch_mode must be 'fast' or 'exact', got {self.batch_mode!r}"
            )
        if self.compaction not in ("auto", "on", "off"):
            raise ValueError(
                f"compaction must be 'auto', 'on' or 'off', "
                f"got {self.compaction!r}"
            )
        if not 0.0 < self.watermark <= 1.0:
            raise ValueError(
                f"watermark must be in (0, 1], got {self.watermark}"
            )
        if self.state_backend not in STATE_BACKENDS:
            known = ", ".join(STATE_BACKENDS)
            raise ValueError(
                f"state_backend must be one of {known}, "
                f"got {self.state_backend!r}"
            )
        # Fails fast on unknown kernels and on the illegal
        # edge_sampled x exact combination (an approximation cannot honour
        # the bit-exactness contract) at plan-build time.
        resolve_collision_kernel(
            self.kernel, exact_mode=self.batch_mode == "exact"
        )
        if self.shard_count is not None and self.shard_count < 1:
            raise ValueError(
                f"shard_count must be >= 1, got {self.shard_count}"
            )

    # ------------------------------------------------------------------ #
    def unbatchable_reason(self) -> Optional[str]:
        """Why the sweep cannot take the batch path (``None`` when it can)."""
        template = self.jobs[0]
        if not supports_batch(template.protocol):
            known = ", ".join(sorted(BATCH_PROTOCOL_FACTORIES))
            return (
                f"protocol {template.protocol.name!r} has no batched "
                f"implementation (batchable: {known})"
            )
        if _batch_collision_model_for(template) is None:
            return (
                f"collision model {template.collision_model!r} has no "
                "batched counterpart"
            )
        return None

    def shared_topology(self) -> Optional[RadioNetwork]:
        """The plan-wide topology cache entry, if the sweep admits one.

        Deterministic graph families ignore their sampling rng, so all jobs
        of the sweep run on the same network: build it once here (the sample
        is seed-independent, so any job's spec works) and let every shard —
        and every trial inside a shard — share the object.
        """
        template = self.jobs[0]
        if not spec_is_deterministic(template.graph):
            return None
        return build_network(template.graph)

    def _fast_seed_or_derived(self) -> np.random.SeedSequence:
        """The fast-mode root seed (derived from the job seeds if unset)."""
        if self.fast_seed is not None:
            return self.fast_seed
        # A plan built without a fast seed still has to be reproducible:
        # derive one from the (deterministic) job seeds.
        return np.random.SeedSequence([job.seed for job in self.jobs])

    def _shard_total(self) -> int:
        """How many batch shards the plan splits into."""
        workers = _worker_count(self.processes, len(self.jobs))
        count = self.shard_count if self.shard_count is not None else workers
        return max(1, min(count, len(self.jobs)))

    def shards(self) -> List[_BatchShard]:
        """The batch shards this plan would execute (one per worker unless
        ``shard_count`` says otherwise)."""
        jobs = self.jobs
        count = self._shard_total()
        bounds = np.linspace(0, len(jobs), count + 1).astype(int)
        shared_network = self.shared_topology()
        if self.batch_mode == "exact":
            fast_seeds: List[Optional[np.random.SeedSequence]] = [None] * count
        else:
            fast_seed = self._fast_seed_or_derived()
            if count == 1:
                # Unsharded fast mode keeps the historical single-generator seed.
                fast_seeds = [fast_seed]
            else:
                fast_seeds = list(fast_seed.spawn(count))
        # Stacked-CSR reuse: an in-process shared-topology plan tiles the
        # block-diagonal batch once per distinct shard size and every shard
        # of that size shares the arrays.  Skipped under process fan-out,
        # where the shard would have to pickle the stacked CSR to its worker
        # (rebuilding from the n-node network there is cheaper than the
        # IPC).
        shared_batches: Dict[int, NetworkBatch] = {}
        if (
            shared_network is not None
            and _worker_count(self.processes, len(jobs)) == 1
        ):
            for size in {
                int(bounds[k + 1] - bounds[k])
                for k in range(count)
                if bounds[k] < bounds[k + 1]
            }:
                shared_batches[size] = NetworkBatch.shared(shared_network, size)
        return [
            _BatchShard(
                jobs=jobs[bounds[k] : bounds[k + 1]],
                mode=self.batch_mode,
                fast_seed=fast_seeds[k],
                state_backend=self.state_backend,
                kernel=self.kernel,
                shared_network=shared_network,
                shared_batch=shared_batches.get(int(bounds[k + 1] - bounds[k])),
            )
            for k in range(count)
            if bounds[k] < bounds[k + 1]
        ]

    # ------------------------------------------------------------------ #
    # Continuous batching
    # ------------------------------------------------------------------ #
    def _continuous_blocker(self) -> Optional[str]:
        """Why the continuous-batching path cannot run (``None`` when it
        can).  Hard blockers only — the ``compaction`` policy (auto/on/off)
        is applied by :meth:`_run` on top of this."""
        if not self.batch:
            return "the sweep is not batched (batch=False)"
        reason = self.unbatchable_reason()
        if reason is not None:
            return reason
        if self.jobs[0].record_rounds:
            return (
                "record_rounds needs a single per-round log; cohorts start "
                "at different global rounds"
            )
        if self.queue is not None:
            if not self.queue.in_process:
                return (
                    "continuous batching is in-process; the queue fans out "
                    "to workers"
                )
        elif _worker_count(self.processes, len(self.jobs)) > 1:
            return "continuous batching is in-process; processes>1 shards"
        return None

    def _run_continuous(
        self, sink: Optional[_ResultSink], *, collect: bool = True
    ) -> List[RunResultTrace]:
        """Execute the sweep through one engine's
        :meth:`~repro.radio.batch.BatchEngine.run_continuous` loop.

        The pending stream pulls jobs lazily in job order — the in-process
        analogue of shard work-stealing: a row freed by a retired trial is
        refilled with what would have been a later shard's work, so
        occupancy stays near ``capacity`` for the whole sweep instead of
        draining once per shard.  Traces stream out one trial at a time
        (finer checkpoints than the per-shard sink of the sharded path).
        """
        jobs = self.jobs
        template = jobs[0]
        exact = self.batch_mode == "exact"
        shared_network = self.shared_topology()
        capacity = max(len(shard.jobs) for shard in self.shards())
        engine = BatchEngine(
            _batch_collision_model_for(template),
            keep_arrays=template.keep_arrays,
            run_to_quiescence=template.run_to_quiescence,
            state_backend=self.state_backend,
            environment=build_batch_environment(template.environment),
            kernel=self.kernel,
        )

        def pending():
            for index, job in enumerate(jobs):
                # The graph stream is spawned even when the cached topology
                # makes it unused, so the protocol stream stays identical on
                # every path.
                graph_rng, protocol_rng = spawn_generators(job.seed, 2)
                network = (
                    shared_network
                    if shared_network is not None
                    else build_network(job.graph, rng=graph_rng)
                )
                yield PendingTrial(
                    network, rng=protocol_rng if exact else None, tag=index
                )

        collected: Dict[int, RunResultTrace] = {}

        def consume(index: int, trace: RunResultTrace) -> None:
            job = jobs[index]
            trace.metadata.setdefault("job", job.as_dict())
            if job.label:
                trace.metadata["label"] = job.label
            if collect:
                collected[index] = trace
            if sink is not None:
                sink(index, trace)

        label = (
            f"continuous:{job_store_key(template, self.cache_context())[:16]}"
        )

        def run_task(_task) -> None:
            engine.run_continuous(
                pending(),
                lambda: build_batch_protocol(template.protocol),
                capacity=capacity,
                watermark=self.watermark,
                max_rounds=template.max_rounds,
                rng=(
                    None
                    if exact
                    else np.random.default_rng(self._fast_seed_or_derived())
                ),
                result_sink=consume,
            )

        # The single continuous task still goes through the queue so its
        # dispatch shows up in queue stats/labels like any shard would.
        queue = self.queue if self.queue is not None else JobQueue.for_workers(1)
        if telemetry.enabled():
            with telemetry.span(
                "shard",
                label,
                trials=len(jobs),
                mode=self.batch_mode,
                capacity=capacity,
            ):
                queue.run(run_task, [0], collect=False, task_labels=[label])
        else:
            queue.run(run_task, [0], collect=False, task_labels=[label])
        return [collected[i] for i in sorted(collected)] if collect else []

    # ------------------------------------------------------------------ #
    # Result-store integration
    # ------------------------------------------------------------------ #
    def cache_context(self) -> Dict[str, object]:
        """The execution facts baked into this sweep's store keys.

        Exact-mode (and serial) trials are pure functions of their job spec,
        so their context is just the mode and state-backend knobs.  Fast
        mode draws from cohort-wide streams — one shared generator per shard
        — so its context additionally pins the cohort (fast-seed entropy,
        shard layout): a fast key can only hit when the *whole sweep* is
        identical, never bit-mixing draws across differently shaped runs.
        """
        batchable = bool(self.batch) and self.unbatchable_reason() is None
        if not batchable:
            return dict(_SERIAL_CONTEXT)
        context: Dict[str, object] = {
            "batch_mode": self.batch_mode,
            "state_backend": self.state_backend,
        }
        resolved_kernel = resolve_collision_kernel(
            self.kernel, exact_mode=self.batch_mode == "exact"
        )
        if resolved_kernel == "edge_sampled":
            # Only the approximation changes the result distribution; the
            # exact kernels (numpy/compiled/auto) are interchangeable bit
            # for bit, so they share the historical digests — the key is
            # omitted entirely to keep every pre-kernel store valid.
            context["kernel"] = "edge_sampled"
        if self.batch_mode == "fast":
            fast_seed = self._fast_seed_or_derived()
            context["fast_cohort"] = {
                "entropy": fast_seed.entropy,
                "spawn_key": list(fast_seed.spawn_key),
                "shards": self._shard_total(),
            }
        return context

    def job_keys(self) -> List[str]:
        """One store digest per job, in job order."""
        context = self.cache_context()
        return [job_store_key(job, context) for job in self.jobs]

    def execute(self) -> List[RunResultTrace]:
        """Run the sweep; returns one trace per job, in job order.

        With a ``store`` attached, cached trials are served from it and only
        the missing ones are executed (checkpointed back shard by shard); in
        fast mode the cache is all-or-nothing (see :meth:`cache_context`).
        """
        if self.batch == "require":
            reason = self.unbatchable_reason()
            if reason is not None:
                # Raise even when the store could serve the sweep: 'require'
                # is a contract about how results are produced, and a silent
                # serial-keyed cache hit would mask the mismatch.
                raise ValueError(
                    f"batch='require' but the sweep is not batchable: {reason}"
                )
        store = self.store
        if store is None:
            return self._run(None)
        context = self.cache_context()
        keys = self.job_keys()

        def run_missing(missing: List[int], sink: _ResultSink) -> List[RunResultTrace]:
            sub = replace(
                self, jobs=tuple(self.jobs[i] for i in missing), store=None
            )
            return sub._run(sink)

        return _consult_store(
            store,
            self.jobs,
            keys,
            run_missing,
            # Fast-mode draws are cohort-wide; a partial hit cannot be
            # extended bit-faithfully, so recompute the whole sweep.
            all_or_nothing=context["batch_mode"] == "fast",
        )

    def execute_streaming(
        self,
        consume: _ResultSink,
        *,
        skip_indices: Sequence[int] = (),
    ) -> Dict[str, int]:
        """Run the sweep feeding ``consume(index, trace)`` exactly once per
        job, **without materialising the result list** — the memory-flat
        path behind the streaming aggregation layer.

        Trials already in the attached ``store`` are streamed from it
        (payloads are loaded one at a time and dropped after consumption);
        missing trials execute and are checkpointed + consumed as their
        shard completes.  ``skip_indices`` names jobs the caller has already
        reduced (a resumed aggregation): they are neither executed nor read
        back — their traces are simply not needed any more.

        In exact mode every trial is its own pure function, so any subset
        can be served/skipped independently.  Fast-mode draws are
        cohort-wide: the store can only serve the sweep all-or-nothing, and
        a caller resuming a fast-mode aggregation must pass either a
        complete ``skip_indices`` or none (partial fast-mode state cannot
        be extended bit-faithfully; the scenario runtime discards it).

        Returns counters: ``{"total", "skipped", "served", "executed"}``.
        """
        skip = set(skip_indices)
        if self.batch == "require":
            reason = self.unbatchable_reason()
            if reason is not None:
                raise ValueError(
                    f"batch='require' but the sweep is not batchable: {reason}"
                )
        counts = {
            "total": len(self.jobs),
            "skipped": len(skip),
            "served": 0,
            "executed": 0,
        }
        candidates = [i for i in range(len(self.jobs)) if i not in skip]
        store = self.store
        context = self.cache_context()
        if context["batch_mode"] == "fast" and skip and candidates:
            # Checked store or no store: running the remaining jobs as a
            # sub-plan would draw from a different cohort layout than the
            # sweep the skipped trials came from.
            raise ValueError(
                "a fast-mode sweep cannot resume from a partial aggregation: "
                "its rng streams are cohort-wide (skip all trials or none)"
            )

        def run_missing(missing: List[int]) -> None:
            if not missing:
                return
            sub = replace(
                self, jobs=tuple(self.jobs[i] for i in missing), store=None
            )

            def sink(sub_index: int, trace: RunResultTrace) -> None:
                index = missing[sub_index]
                if store is not None:
                    store.put(keys[index], _trace_store_payload(trace))
                consume(index, trace)

            sub._run(sink, collect=False)
            counts["executed"] = len(missing)

        if store is None:
            run_missing(candidates)
            return counts

        keys = self.job_keys()
        if context["batch_mode"] == "fast" and not all(
            keys[i] in store for i in candidates
        ):
            # All-or-nothing: a partial fast-mode hit set cannot be extended
            # bit-faithfully, so everything recomputes (and the counters
            # report misses, not discarded probes).
            store.misses += len(candidates)
            telemetry.counter_inc("store.misses", len(candidates))
            run_missing(candidates)
            return counts
        missing: List[int] = []
        for index in candidates:
            payload = store.get(keys[index])
            if payload is None:
                missing.append(index)
                continue
            consume(index, _rehydrate_trace(payload, self.jobs[index]))
            counts["served"] += 1
        run_missing(missing)
        return counts

    def _run(
        self, sink: Optional[_ResultSink], *, collect: bool = True
    ) -> List[RunResultTrace]:
        """Execute every job of the plan (no store consultation), feeding
        completed traces to ``sink`` as their shard/chunk finishes.

        ``collect=False`` is the streaming mode: ``sink`` still sees every
        trace, but nothing is retained and the return value is empty — a
        10⁵-trial sweep's memory stays bounded by one shard, not by R.
        """
        if self.batch:
            reason = self.unbatchable_reason()
            if reason is not None:
                if self.batch == "require":
                    raise ValueError(
                        f"batch='require' but the sweep is not batchable: "
                        f"{reason}"
                    )
                return _run_jobs_queued(
                    self.jobs,
                    processes=self.processes,
                    queue=self.queue,
                    sink=sink,
                    collect=collect,
                )
            if self.compaction != "off":
                blocker = self._continuous_blocker()
                if blocker is None and (
                    self.compaction == "on" or self.batch_mode == "exact"
                ):
                    return self._run_continuous(sink, collect=collect)
                if self.compaction == "on":
                    raise ValueError(
                        f"compaction='on' but the sweep cannot run "
                        f"continuously: {blocker}"
                    )
            shards = self.shards()
            queue = self.queue
            if queue is None:
                workers = _worker_count(self.processes, len(self.jobs))
                queue = JobQueue.for_workers(min(workers, len(shards)))
            starts = np.concatenate(
                [[0], np.cumsum([len(shard.jobs) for shard in shards])]
            )

            # Name each shard by its first trial's cell digest, so a
            # poisoned shard is identifiable (WorkerPoolError), reproducible
            # straight from the error message, and attributable in the
            # telemetry stream (the label is also the shard span's name and
            # the tag relayed events carry home from workers).
            context = self.cache_context()
            labels = [
                f"shard[{k}]:{job_store_key(shard.jobs[0], context)[:16]}"
                for k, shard in enumerate(shards)
            ]
            shards = [
                replace(shard, label=label)
                for shard, label in zip(shards, labels)
            ]
            # Worker processes buffer their telemetry and ship it back with
            # the shard results (the parent cannot see their pipelines);
            # in-process execution emits directly, so no wrapping needed.
            traced = telemetry.enabled() and not isinstance(
                queue.backend, InProcessBackend
            )

            def on_shard(shard_index: int, shard_result) -> None:
                if traced:
                    shard_result, payload = shard_result
                    telemetry.ingest(payload, shard=labels[shard_index])
                if sink is not None:
                    base = int(starts[shard_index])
                    for offset, trace in enumerate(shard_result):
                        sink(base + offset, trace)

            if (
                not collect
                and sink is not None
                and isinstance(queue.backend, InProcessBackend)
            ):
                # In-process streaming: hand the sink through to the engine
                # so traces flow out one trial at a time and not even one
                # shard's trace list is ever materialised.  (Process fan-out
                # keeps the per-shard list — the traces have to cross the
                # IPC boundary as a batch anyway.)
                def run_streaming(item) -> None:
                    index, shard = item
                    base = int(starts[index])
                    _execute_batch_shard(
                        shard,
                        result_sink=lambda t, trace: sink(base + t, trace),
                    )

                queue.run(
                    run_streaming,
                    list(enumerate(shards)),
                    collect=False,
                    task_labels=labels,
                )
                return []
            parts = queue.run(
                _execute_batch_shard_traced if traced else _execute_batch_shard,
                shards,
                on_result=on_shard,
                collect=collect,
                task_labels=labels,
            )
            if traced:
                return [result for part in parts for result in part[0]]
            return [result for part in parts for result in part]
        return _run_jobs_queued(
            self.jobs,
            processes=self.processes,
            queue=self.queue,
            sink=sink,
            collect=collect,
        )


def build_repetition_plan(
    graph: GraphSpec,
    protocol: ProtocolSpec,
    *,
    repetitions: int,
    seed: int = 0,
    processes: Optional[int] = None,
    batch: Union[bool, str, None] = None,
    batch_mode: Optional[str] = None,
    state_backend: Optional[str] = None,
    kernel: Optional[str] = None,
    store=None,
    queue: Optional[JobQueue] = None,
    shards: Optional[int] = None,
    compaction: Optional[str] = None,
    watermark: Optional[float] = None,
    **job_options,
) -> ExecutionPlan:
    """The :class:`ExecutionPlan` behind :func:`repeat_job`, unexecuted.

    This is the single place per-trial seeds are spawned for a repetition
    sweep — :func:`repeat_job` and the scenario compiler
    (:mod:`repro.scenarios`) both build their plans here, so a scenario
    cell's trials are bit-identical (exact mode) to a direct ``repeat_job``
    call with the same parameters, whichever path executes them.
    """
    if repetitions < 1:
        raise ValueError(f"repetitions must be >= 1, got {repetitions}")
    if batch is None:
        batch = _EXECUTION_DEFAULTS.batch
    if batch_mode is None:
        batch_mode = _EXECUTION_DEFAULTS.batch_mode
    if state_backend is None:
        state_backend = _EXECUTION_DEFAULTS.state_backend
    if kernel is None:
        kernel = _EXECUTION_DEFAULTS.kernel
    if compaction is None:
        compaction = _EXECUTION_DEFAULTS.compaction
    if watermark is None:
        watermark = _EXECUTION_DEFAULTS.watermark
    if "environment" not in job_options:
        if _EXECUTION_DEFAULTS.environment is not None:
            job_options["environment"] = _EXECUTION_DEFAULTS.environment
    else:
        # Normalise to canonical form here so all spellings of the same
        # environment share one store digest.
        job_options["environment"] = validate_environment_spec(
            job_options["environment"]
        )
    base = np.random.SeedSequence(seed)
    # The extra child seeds the fast-mode batch generator; the first
    # ``repetitions`` children are identical to what the serial path spawns.
    children = base.spawn(repetitions + 1)
    seeds = [int(s.generate_state(1)[0]) for s in children[:repetitions]]
    jobs = tuple(
        Job(graph=graph, protocol=protocol, seed=s, **job_options) for s in seeds
    )
    return ExecutionPlan(
        jobs=jobs,
        processes=processes,
        batch=batch,
        batch_mode=batch_mode,
        fast_seed=children[-1],
        state_backend=state_backend,
        kernel=kernel,
        store=_resolve_store(store),
        queue=queue,
        shard_count=shards,
        compaction=compaction,
        watermark=watermark,
    )


def repeat_job(
    graph: GraphSpec,
    protocol: ProtocolSpec,
    *,
    repetitions: int,
    seed: int = 0,
    processes: Optional[int] = None,
    batch: Union[bool, str, None] = None,
    batch_mode: Optional[str] = None,
    state_backend: Optional[str] = None,
    kernel: Optional[str] = None,
    store=None,
    queue: Optional[JobQueue] = None,
    shards: Optional[int] = None,
    compaction: Optional[str] = None,
    watermark: Optional[float] = None,
    **job_options,
) -> List[RunResultTrace]:
    """Run the same (graph, protocol) pair under ``repetitions`` different seeds.

    Builds an :class:`ExecutionPlan` and executes it: by default all
    repetitions run through the :class:`~repro.radio.batch.BatchEngine` on
    stacked ``(R, n)`` state (one topology sample per trial), sharded across
    ``processes`` workers when fan-out is requested.  Per-trial seeds are
    spawned exactly as in the serial path, so the sampled topologies are
    identical and aggregates are statistically interchangeable across every
    execution strategy.  Anything non-batchable falls back to
    :func:`run_jobs` transparently — pass ``batch="require"`` to get an error
    instead of the silent fallback.  The returned ``List[RunResultTrace]``
    has the same shape either way.

    ``batch`` / ``batch_mode`` / ``state_backend`` / ``kernel`` default to
    the process-wide settings of :func:`configure_execution` (out of the
    box: batched, ``"fast"``, ``"auto"`` node-set state, ``"auto"``
    collision kernel).

    * ``batch_mode="fast"``: one shared generator per shard with vectorised
      draws — statistically identical to serial, not bit-identical.
    * ``batch_mode="exact"``: one child generator per trial, consumed exactly
      as the serial engine would — results are bit-identical to
      ``batch=False`` runs of the same seed (the equivalence tests rely on
      this), regardless of sharding.

    ``store`` selects the content-addressed result store (``None``: the
    process-wide default installed by :func:`configure_execution`,
    ``False``: disabled, or an explicit :class:`~repro.store.ResultStore` /
    cache-dir path).  With a store attached the sweep is *incremental*:
    trials already recorded — from an earlier run, an interrupted run, or a
    smaller ``repetitions`` at the same seed (seed spawning is
    prefix-stable) — are served from the store and only the missing ones
    execute.  ``queue`` / ``shards`` override the dispatch queue and the
    shard granularity (see :class:`ExecutionPlan`).
    """
    plan = build_repetition_plan(
        graph,
        protocol,
        repetitions=repetitions,
        seed=seed,
        processes=processes,
        batch=batch,
        batch_mode=batch_mode,
        state_backend=state_backend,
        kernel=kernel,
        store=store,
        queue=queue,
        shards=shards,
        compaction=compaction,
        watermark=watermark,
        **job_options,
    )
    return plan.execute()


def aggregate_runs(runs: Sequence[RunResultTrace]) -> Dict[str, object]:
    """Aggregate repeated runs into the quantities the theorems bound.

    Returns a dict with success rate, completion-round statistics
    (successful runs only), and energy statistics (all runs).

    This is the *materialising* reduction: it needs every trace in memory at
    once.  The experiment suite itself now streams per-trial metrics through
    :class:`repro.analysis.streaming.MetricAccumulator` as shards complete
    (see :mod:`repro.scenarios`), which keeps 10⁵⁺-trial sweeps memory-flat;
    this helper remains for callers that already hold a list of traces.
    """
    runs = list(runs)
    if not runs:
        raise ValueError("cannot aggregate zero runs")
    successes = [r for r in runs if r.completed]
    out: Dict[str, object] = {
        "runs": len(runs),
        "successes": len(successes),
        "success_rate": len(successes) / len(runs),
        "n": runs[0].n,
    }
    if successes:
        out["completion_rounds"] = summarize([r.completion_round for r in successes])
    out["total_transmissions"] = summarize(
        [r.energy.total_transmissions for r in runs]
    )
    out["max_tx_per_node"] = summarize([r.energy.max_per_node for r in runs])
    out["mean_tx_per_node"] = summarize([r.energy.mean_per_node for r in runs])
    return out
