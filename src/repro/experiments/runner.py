"""Job execution: seeds, repetition, aggregation, optional process fan-out.

A :class:`Job` is a fully declarative description of one protocol run
(topology spec + protocol spec + seed + engine options), so a list of jobs
can be executed serially or handed to a :class:`concurrent.futures.
ProcessPoolExecutor` — each worker rebuilds the network and protocol from the
specs, keeping results independent of scheduling (the per-job seed fully
determines both the topology sample and the protocol's randomness).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro._util.rng import spawn_generators
from repro.analysis.statistics import summarize
from repro.experiments.protocols import (
    ProtocolSpec,
    build_batch_protocol,
    build_protocol,
    supports_batch,
)
from repro.graphs.builders import GraphSpec, build_network
from repro.radio.batch import BatchEngine
from repro.radio.collision import (
    BatchCollisionModel,
    BatchErasureCollisionModel,
    BatchStandardCollisionModel,
    BatchWithCollisionDetectionModel,
    CollisionModel,
    ErasureCollisionModel,
    StandardCollisionModel,
    WithCollisionDetectionModel,
)
from repro.radio.engine import SimulationEngine
from repro.radio.trace import RunResultTrace

__all__ = ["Job", "execute_job", "run_jobs", "aggregate_runs", "repeat_job"]

_COLLISION_MODELS = {
    "standard": StandardCollisionModel,
    "collision_detection": WithCollisionDetectionModel,
}

_BATCH_COLLISION_MODELS = {
    "standard": BatchStandardCollisionModel,
    "collision_detection": BatchWithCollisionDetectionModel,
}


@dataclass(frozen=True)
class Job:
    """One fully specified protocol run."""

    graph: GraphSpec
    protocol: ProtocolSpec
    seed: int
    run_to_quiescence: bool = False
    record_rounds: bool = False
    keep_arrays: bool = False
    max_rounds: Optional[int] = None
    collision_model: str = "standard"
    erasure_probability: float = 0.0
    label: str = ""

    def as_dict(self) -> Dict[str, object]:
        return {
            "graph": self.graph.as_dict(),
            "protocol": self.protocol.as_dict(),
            "seed": self.seed,
            "run_to_quiescence": self.run_to_quiescence,
            "record_rounds": self.record_rounds,
            "keep_arrays": self.keep_arrays,
            "max_rounds": self.max_rounds,
            "collision_model": self.collision_model,
            "erasure_probability": self.erasure_probability,
            "label": self.label,
        }


def _collision_model_for(job: Job) -> CollisionModel:
    if job.erasure_probability > 0.0:
        return ErasureCollisionModel(job.erasure_probability)
    try:
        return _COLLISION_MODELS[job.collision_model]()
    except KeyError:
        known = ", ".join(sorted(_COLLISION_MODELS))
        raise ValueError(
            f"unknown collision model {job.collision_model!r}; known: {known}"
        )


def execute_job(job: Job) -> RunResultTrace:
    """Build the network and protocol from the job's specs and run once.

    Two independent generator streams are spawned from the job seed: one for
    the topology sample, one for the protocol/engine randomness — so e.g.
    comparing two protocols with the same seed uses the *same* sampled
    network.
    """
    graph_rng, protocol_rng = spawn_generators(job.seed, 2)
    network = build_network(job.graph, rng=graph_rng)
    protocol = build_protocol(job.protocol)
    engine = SimulationEngine(
        _collision_model_for(job),
        record_rounds=job.record_rounds,
        keep_arrays=job.keep_arrays,
        run_to_quiescence=job.run_to_quiescence,
    )
    result = engine.run(network, protocol, rng=protocol_rng, max_rounds=job.max_rounds)
    result.metadata.setdefault("job", job.as_dict())
    if job.label:
        result.metadata["label"] = job.label
    return result


def run_jobs(
    jobs: Sequence[Job],
    *,
    processes: Optional[int] = None,
) -> List[RunResultTrace]:
    """Execute ``jobs`` serially or across ``processes`` workers.

    ``processes=None`` (default) runs serially — the right choice for the
    laptop-scale sweeps in this repository; pass an integer (or 0 for
    ``os.cpu_count()``) to fan out.
    """
    jobs = list(jobs)
    if processes is None or len(jobs) <= 1:
        return [execute_job(job) for job in jobs]
    workers = processes if processes > 0 else (os.cpu_count() or 1)
    workers = min(workers, len(jobs))
    # A computed chunksize (instead of the default 1) amortises the per-item
    # pickle/IPC round trip on large sweeps while still keeping ~4 chunks per
    # worker for load balancing.
    chunksize = max(1, len(jobs) // (4 * workers))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(execute_job, jobs, chunksize=chunksize))


def repeat_job(
    graph: GraphSpec,
    protocol: ProtocolSpec,
    *,
    repetitions: int,
    seed: int = 0,
    processes: Optional[int] = None,
    batch: bool = True,
    batch_mode: str = "fast",
    **job_options,
) -> List[RunResultTrace]:
    """Run the same (graph, protocol) pair under ``repetitions`` different seeds.

    When ``batch`` is true (the default) and the job is batchable — the
    protocol has a registered batched implementation, the collision model has
    a batched counterpart, and no process fan-out was requested — all
    repetitions run simultaneously through the
    :class:`~repro.radio.batch.BatchEngine` on stacked ``(R, n)`` state, one
    topology sample per trial.  Per-trial seeds are spawned exactly as in the
    serial path, so the sampled topologies are identical and aggregates are
    statistically interchangeable with serial runs.  Anything non-batchable
    falls back to :func:`run_jobs` transparently; the returned
    ``List[RunResultTrace]`` has the same shape either way.

    ``batch_mode`` selects the randomness policy of the batched path:

    * ``"fast"`` (default): one shared generator with vectorised draws —
      statistically identical to serial, not bit-identical.
    * ``"exact"``: one child generator per trial, consumed exactly as the
      serial engine would — batched results are bit-identical to
      ``batch=False`` runs of the same seed (the equivalence tests rely on
      this).
    """
    if repetitions < 1:
        raise ValueError(f"repetitions must be >= 1, got {repetitions}")
    if batch_mode not in ("fast", "exact"):
        raise ValueError(f"batch_mode must be 'fast' or 'exact', got {batch_mode!r}")
    base = np.random.SeedSequence(seed)
    # The extra child seeds the fast-mode batch generator; the first
    # ``repetitions`` children are identical to what the serial path spawns.
    children = base.spawn(repetitions + 1)
    seeds = [int(s.generate_state(1)[0]) for s in children[:repetitions]]
    jobs = [
        Job(graph=graph, protocol=protocol, seed=s, **job_options) for s in seeds
    ]
    if batch and processes is None:
        results = _execute_jobs_batched(jobs, mode=batch_mode, fast_seed=children[-1])
        if results is not None:
            return results
    return run_jobs(jobs, processes=processes)


def _batch_collision_model_for(job: Job) -> Optional[BatchCollisionModel]:
    if job.erasure_probability > 0.0:
        return BatchErasureCollisionModel(job.erasure_probability)
    factory = _BATCH_COLLISION_MODELS.get(job.collision_model)
    return factory() if factory is not None else None


def _execute_jobs_batched(
    jobs: Sequence[Job],
    *,
    mode: str,
    fast_seed: np.random.SeedSequence,
) -> Optional[List[RunResultTrace]]:
    """Run a homogeneous repetition sweep through the batch engine.

    Returns ``None`` when the jobs are not batchable (unknown protocol or
    collision model), in which case the caller falls back to the serial path.
    """
    template = jobs[0]
    if not supports_batch(template.protocol):
        return None
    collision_model = _batch_collision_model_for(template)
    if collision_model is None:
        return None

    networks = []
    protocol_rngs = []
    for job in jobs:
        graph_rng, protocol_rng = spawn_generators(job.seed, 2)
        networks.append(build_network(job.graph, rng=graph_rng))
        protocol_rngs.append(protocol_rng)

    engine = BatchEngine(
        collision_model,
        record_rounds=template.record_rounds,
        keep_arrays=template.keep_arrays,
        run_to_quiescence=template.run_to_quiescence,
    )
    protocol = build_batch_protocol(template.protocol)
    if mode == "exact":
        results = engine.run(
            networks, protocol, rngs=protocol_rngs, max_rounds=template.max_rounds
        )
    else:
        results = engine.run(
            networks,
            protocol,
            rng=np.random.default_rng(fast_seed),
            max_rounds=template.max_rounds,
        )
    for job, result in zip(jobs, results):
        result.metadata.setdefault("job", job.as_dict())
        if job.label:
            result.metadata["label"] = job.label
    return results


def aggregate_runs(runs: Sequence[RunResultTrace]) -> Dict[str, object]:
    """Aggregate repeated runs into the quantities the theorems bound.

    Returns a dict with success rate, completion-round statistics
    (successful runs only), and energy statistics (all runs).
    """
    runs = list(runs)
    if not runs:
        raise ValueError("cannot aggregate zero runs")
    successes = [r for r in runs if r.completed]
    out: Dict[str, object] = {
        "runs": len(runs),
        "successes": len(successes),
        "success_rate": len(successes) / len(runs),
        "n": runs[0].n,
    }
    if successes:
        out["completion_rounds"] = summarize([r.completion_round for r in successes])
    out["total_transmissions"] = summarize(
        [r.energy.total_transmissions for r in runs]
    )
    out["max_tx_per_node"] = summarize([r.energy.max_per_node for r in runs])
    out["mean_tx_per_node"] = summarize([r.energy.mean_per_node for r in runs])
    return out
