"""Unified job execution: one pipeline composing batching and process fan-out.

A :class:`Job` is a fully declarative description of one protocol run
(topology spec + protocol spec + seed + engine options), so a list of jobs
can be executed serially or handed to a :class:`concurrent.futures.
ProcessPoolExecutor` — each worker rebuilds the network and protocol from the
specs, keeping results independent of scheduling (the per-job seed fully
determines both the topology sample and the protocol's randomness).

Repetition sweeps (the workload behind every experiment E1–E16) go through an
:class:`ExecutionPlan`, which composes the two execution axes instead of
treating them as alternatives:

* **batching** — every registered protocol has a batched implementation
  (``BATCH_PROTOCOL_FACTORIES`` covers ``PROTOCOL_FACTORIES`` completely), so
  by default all ``R`` repetitions advance together through the
  :class:`~repro.radio.batch.BatchEngine` on stacked ``(R, n)`` state;
* **process fan-out** — ``processes=K`` shards the ``R`` per-trial seeds into
  ``K`` contiguous chunks, each worker running its chunk as its own
  :class:`~repro.radio.batch.NetworkBatch` (batching *within* each worker),
  rather than falling back to one-job-per-worker serial execution.

Per-trial seeds are spawned identically on every path, so the sampled
topologies — and, in ``batch_mode="exact"``, the full traces bit for bit —
are independent of how the sweep was scheduled.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro._util.rng import spawn_generators
from repro.analysis.statistics import summarize
from repro.experiments.protocols import (
    BATCH_PROTOCOL_FACTORIES,
    ProtocolSpec,
    build_batch_protocol,
    build_protocol,
    supports_batch,
)
from repro.graphs.builders import GraphSpec, build_network, spec_is_deterministic
from repro.radio.batch import BatchEngine
from repro.radio.network import RadioNetwork
from repro.radio.nodesets import STATE_BACKENDS
from repro.radio.collision import (
    BatchCollisionModel,
    BatchErasureCollisionModel,
    BatchStandardCollisionModel,
    BatchWithCollisionDetectionModel,
    CollisionModel,
    ErasureCollisionModel,
    StandardCollisionModel,
    WithCollisionDetectionModel,
)
from repro.radio.engine import SimulationEngine
from repro.radio.trace import RunResultTrace

__all__ = [
    "Job",
    "ExecutionPlan",
    "configure_execution",
    "execute_job",
    "run_jobs",
    "aggregate_runs",
    "repeat_job",
]

_COLLISION_MODELS = {
    "standard": StandardCollisionModel,
    "collision_detection": WithCollisionDetectionModel,
}

_BATCH_COLLISION_MODELS = {
    "standard": BatchStandardCollisionModel,
    "collision_detection": BatchWithCollisionDetectionModel,
}


@dataclass(frozen=True)
class Job:
    """One fully specified protocol run."""

    graph: GraphSpec
    protocol: ProtocolSpec
    seed: int
    run_to_quiescence: bool = False
    record_rounds: bool = False
    keep_arrays: bool = False
    max_rounds: Optional[int] = None
    collision_model: str = "standard"
    erasure_probability: float = 0.0
    label: str = ""

    def as_dict(self) -> Dict[str, object]:
        return {
            "graph": self.graph.as_dict(),
            "protocol": self.protocol.as_dict(),
            "seed": self.seed,
            "run_to_quiescence": self.run_to_quiescence,
            "record_rounds": self.record_rounds,
            "keep_arrays": self.keep_arrays,
            "max_rounds": self.max_rounds,
            "collision_model": self.collision_model,
            "erasure_probability": self.erasure_probability,
            "label": self.label,
        }


def _collision_model_for(job: Job) -> CollisionModel:
    if job.erasure_probability > 0.0:
        return ErasureCollisionModel(job.erasure_probability)
    try:
        return _COLLISION_MODELS[job.collision_model]()
    except KeyError:
        known = ", ".join(sorted(_COLLISION_MODELS))
        raise ValueError(
            f"unknown collision model {job.collision_model!r}; known: {known}"
        )


def execute_job(job: Job) -> RunResultTrace:
    """Build the network and protocol from the job's specs and run once.

    Two independent generator streams are spawned from the job seed: one for
    the topology sample, one for the protocol/engine randomness — so e.g.
    comparing two protocols with the same seed uses the *same* sampled
    network.
    """
    graph_rng, protocol_rng = spawn_generators(job.seed, 2)
    network = build_network(job.graph, rng=graph_rng)
    protocol = build_protocol(job.protocol)
    engine = SimulationEngine(
        _collision_model_for(job),
        record_rounds=job.record_rounds,
        keep_arrays=job.keep_arrays,
        run_to_quiescence=job.run_to_quiescence,
    )
    result = engine.run(network, protocol, rng=protocol_rng, max_rounds=job.max_rounds)
    result.metadata.setdefault("job", job.as_dict())
    if job.label:
        result.metadata["label"] = job.label
    return result


def _worker_count(processes: Optional[int], task_count: int) -> int:
    """Resolve a ``processes`` argument into an actual worker count."""
    if processes is None:
        return 1
    workers = processes if processes > 0 else (os.cpu_count() or 1)
    return max(1, min(workers, task_count))


def run_jobs(
    jobs: Sequence[Job],
    *,
    processes: Optional[int] = None,
) -> List[RunResultTrace]:
    """Execute ``jobs`` one engine run per job, serially or across workers.

    ``processes=None`` (default) runs serially; pass an integer (or 0 for
    ``os.cpu_count()``) to fan out.  This is the heterogeneous-job path —
    repetition sweeps should go through :func:`repeat_job` /
    :class:`ExecutionPlan`, which batch the repetition axis as well.
    """
    jobs = list(jobs)
    workers = _worker_count(processes, len(jobs))
    if workers <= 1 or len(jobs) <= 1:
        return [execute_job(job) for job in jobs]
    # A computed chunksize (instead of the default 1) amortises the per-item
    # pickle/IPC round trip on large sweeps while still keeping ~4 chunks per
    # worker for load balancing.
    chunksize = max(1, len(jobs) // (4 * workers))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(execute_job, jobs, chunksize=chunksize))


@dataclass(frozen=True)
class _ExecutionDefaults:
    """Process-wide defaults for the batch axis of :class:`ExecutionPlan`."""

    batch: Union[bool, str] = True
    batch_mode: str = "fast"
    state_backend: str = "auto"


_EXECUTION_DEFAULTS = _ExecutionDefaults()


def configure_execution(
    *,
    batch: Union[bool, str, None] = None,
    batch_mode: Optional[str] = None,
    state_backend: Optional[str] = None,
) -> None:
    """Set process-wide execution defaults (the CLI's ``--no-batch`` /
    ``--batch-mode`` / ``--state-backend`` flags land here).

    ``repeat_job`` / :class:`ExecutionPlan` use these whenever the caller
    does not pass ``batch`` / ``batch_mode`` / ``state_backend`` explicitly,
    so the whole experiment suite can be switched to serial, exact-mode or a
    forced node-set state backend without threading flags through every
    experiment module.
    """
    global _EXECUTION_DEFAULTS
    updates = {}
    if batch is not None:
        updates["batch"] = batch
    if batch_mode is not None:
        updates["batch_mode"] = batch_mode
    if state_backend is not None:
        updates["state_backend"] = state_backend
    _EXECUTION_DEFAULTS = replace(_EXECUTION_DEFAULTS, **updates)


@dataclass(frozen=True)
class _BatchShard:
    """One worker's contiguous slice of a batched repetition sweep."""

    jobs: Tuple[Job, ...]
    mode: str
    fast_seed: Optional[np.random.SeedSequence]
    state_backend: str = "auto"
    #: Plan-level topology cache: for deterministic graph families every
    #: job's sample is the same network, so the plan builds it once and every
    #: shard (and every trial within a shard) shares the object instead of
    #: rebuilding it per job.  ``None`` for random families, whose per-trial
    #: samples are (deliberately) distinct.
    shared_network: Optional[RadioNetwork] = None


def _execute_batch_shard(shard: _BatchShard) -> List[RunResultTrace]:
    """Run one shard's jobs as a single :class:`NetworkBatch` through the
    batch engine.  Runs in the parent (single shard) or a worker process
    (sharded fan-out); everything it needs is picklable."""
    jobs = shard.jobs
    template = jobs[0]
    collision_model = _batch_collision_model_for(template)

    networks = []
    protocol_rngs = []
    for job in jobs:
        # The graph stream is spawned even when the cached topology makes it
        # unused, so the protocol stream stays identical on every path.
        graph_rng, protocol_rng = spawn_generators(job.seed, 2)
        if shard.shared_network is not None:
            networks.append(shard.shared_network)
        else:
            networks.append(build_network(job.graph, rng=graph_rng))
        protocol_rngs.append(protocol_rng)

    engine = BatchEngine(
        collision_model,
        record_rounds=template.record_rounds,
        keep_arrays=template.keep_arrays,
        run_to_quiescence=template.run_to_quiescence,
        state_backend=shard.state_backend,
    )
    protocol = build_batch_protocol(template.protocol)
    if shard.mode == "exact":
        results = engine.run(
            networks, protocol, rngs=protocol_rngs, max_rounds=template.max_rounds
        )
    else:
        results = engine.run(
            networks,
            protocol,
            rng=np.random.default_rng(shard.fast_seed),
            max_rounds=template.max_rounds,
        )
    for job, result in zip(jobs, results):
        result.metadata.setdefault("job", job.as_dict())
        if job.label:
            result.metadata["label"] = job.label
    return results


def _batch_collision_model_for(job: Job) -> Optional[BatchCollisionModel]:
    if job.erasure_probability > 0.0:
        return BatchErasureCollisionModel(job.erasure_probability)
    factory = _BATCH_COLLISION_MODELS.get(job.collision_model)
    return factory() if factory is not None else None


@dataclass(frozen=True)
class ExecutionPlan:
    """How a homogeneous repetition sweep is executed.

    The plan composes the two execution axes — batching and process fan-out —
    instead of treating them as mutually exclusive:

    ========== ============= =================================================
    ``batch``  ``processes`` execution
    ========== ============= =================================================
    truthy     ``None``      one :class:`~repro.radio.batch.NetworkBatch` of
                             all ``R`` trials, in process
    truthy     ``K``         ``R`` seeds sharded into ``K`` contiguous chunks;
                             each worker runs its chunk as its own batch
    ``False``  ``None``      serial loop, one engine run per job
    ``False``  ``K``         one-job-per-worker serial fan-out
    ========== ============= =================================================

    ``batch`` may also be the string ``"require"``: batch like ``True`` but
    raise instead of silently falling back when the sweep is not batchable
    (unknown collision model, or — should the registries ever diverge again —
    a protocol without a batched implementation), so a caller counting on
    batch throughput finds out instead of quietly running ~10x slower.

    ``batch_mode`` selects the randomness policy of the batched path:
    ``"fast"`` (one shared generator per shard, vectorised draws —
    statistically identical to serial) or ``"exact"`` (one child generator
    per trial, consumed exactly as the serial engine would — bit-identical
    to serial, regardless of sharding).

    ``state_backend`` selects the node-set state representation of the batch
    engine (``"auto"`` / ``"dense"`` / ``"bitset"`` / ``"sparse"``, see
    :mod:`repro.radio.nodesets`); results are identical under every backend
    (bit-identical in exact mode), so this is purely a space/time knob.

    Deterministic graph families (paths, grids, the lower-bound gadgets …)
    sample to the same network under every seed, so the plan builds that
    topology **once** and hands every shard a shared view instead of
    rebuilding it per job; random families keep their per-trial samples.

    The jobs must be a homogeneous sweep: same specs and engine options,
    differing only in seed/label (what :func:`repeat_job` builds).
    """

    jobs: Tuple[Job, ...]
    processes: Optional[int] = None
    batch: Union[bool, str] = True
    batch_mode: str = "fast"
    fast_seed: Optional[np.random.SeedSequence] = None
    state_backend: str = "auto"

    def __post_init__(self) -> None:
        if not self.jobs:
            raise ValueError("ExecutionPlan needs at least one job")
        if self.batch not in (True, False, "require"):
            raise ValueError(
                f"batch must be True, False or 'require', got {self.batch!r}"
            )
        if self.batch_mode not in ("fast", "exact"):
            raise ValueError(
                f"batch_mode must be 'fast' or 'exact', got {self.batch_mode!r}"
            )
        if self.state_backend not in STATE_BACKENDS:
            known = ", ".join(STATE_BACKENDS)
            raise ValueError(
                f"state_backend must be one of {known}, "
                f"got {self.state_backend!r}"
            )

    # ------------------------------------------------------------------ #
    def unbatchable_reason(self) -> Optional[str]:
        """Why the sweep cannot take the batch path (``None`` when it can)."""
        template = self.jobs[0]
        if not supports_batch(template.protocol):
            known = ", ".join(sorted(BATCH_PROTOCOL_FACTORIES))
            return (
                f"protocol {template.protocol.name!r} has no batched "
                f"implementation (batchable: {known})"
            )
        if _batch_collision_model_for(template) is None:
            return (
                f"collision model {template.collision_model!r} has no "
                "batched counterpart"
            )
        return None

    def shared_topology(self) -> Optional[RadioNetwork]:
        """The plan-wide topology cache entry, if the sweep admits one.

        Deterministic graph families ignore their sampling rng, so all jobs
        of the sweep run on the same network: build it once here (the sample
        is seed-independent, so any job's spec works) and let every shard —
        and every trial inside a shard — share the object.
        """
        template = self.jobs[0]
        if not spec_is_deterministic(template.graph):
            return None
        return build_network(template.graph)

    def shards(self) -> List[_BatchShard]:
        """The per-worker batch shards this plan would execute."""
        jobs = self.jobs
        workers = _worker_count(self.processes, len(jobs))
        bounds = np.linspace(0, len(jobs), workers + 1).astype(int)
        shared_network = self.shared_topology()
        if self.batch_mode == "exact":
            fast_seeds: List[Optional[np.random.SeedSequence]] = [None] * workers
        else:
            # A plan built without a fast seed still has to be reproducible:
            # derive one from the (deterministic) job seeds.
            fast_seed = self.fast_seed
            if fast_seed is None:
                fast_seed = np.random.SeedSequence(
                    [job.seed for job in jobs]
                )
            if workers == 1:
                # Unsharded fast mode keeps the historical single-generator seed.
                fast_seeds = [fast_seed]
            else:
                fast_seeds = list(fast_seed.spawn(workers))
        return [
            _BatchShard(
                jobs=jobs[bounds[k] : bounds[k + 1]],
                mode=self.batch_mode,
                fast_seed=fast_seeds[k],
                state_backend=self.state_backend,
                shared_network=shared_network,
            )
            for k in range(workers)
            if bounds[k] < bounds[k + 1]
        ]

    def execute(self) -> List[RunResultTrace]:
        """Run the sweep; returns one trace per job, in job order."""
        if self.batch:
            reason = self.unbatchable_reason()
            if reason is not None:
                if self.batch == "require":
                    raise ValueError(
                        f"batch='require' but the sweep is not batchable: "
                        f"{reason}"
                    )
                return run_jobs(self.jobs, processes=self.processes)
            shards = self.shards()
            if len(shards) == 1:
                return _execute_batch_shard(shards[0])
            with ProcessPoolExecutor(max_workers=len(shards)) as pool:
                parts = list(pool.map(_execute_batch_shard, shards))
            return [result for part in parts for result in part]
        return run_jobs(self.jobs, processes=self.processes)


def repeat_job(
    graph: GraphSpec,
    protocol: ProtocolSpec,
    *,
    repetitions: int,
    seed: int = 0,
    processes: Optional[int] = None,
    batch: Union[bool, str, None] = None,
    batch_mode: Optional[str] = None,
    state_backend: Optional[str] = None,
    **job_options,
) -> List[RunResultTrace]:
    """Run the same (graph, protocol) pair under ``repetitions`` different seeds.

    Builds an :class:`ExecutionPlan` and executes it: by default all
    repetitions run through the :class:`~repro.radio.batch.BatchEngine` on
    stacked ``(R, n)`` state (one topology sample per trial), sharded across
    ``processes`` workers when fan-out is requested.  Per-trial seeds are
    spawned exactly as in the serial path, so the sampled topologies are
    identical and aggregates are statistically interchangeable across every
    execution strategy.  Anything non-batchable falls back to
    :func:`run_jobs` transparently — pass ``batch="require"`` to get an error
    instead of the silent fallback.  The returned ``List[RunResultTrace]``
    has the same shape either way.

    ``batch`` / ``batch_mode`` / ``state_backend`` default to the
    process-wide settings of :func:`configure_execution` (out of the box:
    batched, ``"fast"``, ``"auto"`` node-set state).

    * ``batch_mode="fast"``: one shared generator per shard with vectorised
      draws — statistically identical to serial, not bit-identical.
    * ``batch_mode="exact"``: one child generator per trial, consumed exactly
      as the serial engine would — results are bit-identical to
      ``batch=False`` runs of the same seed (the equivalence tests rely on
      this), regardless of sharding.
    """
    if repetitions < 1:
        raise ValueError(f"repetitions must be >= 1, got {repetitions}")
    if batch is None:
        batch = _EXECUTION_DEFAULTS.batch
    if batch_mode is None:
        batch_mode = _EXECUTION_DEFAULTS.batch_mode
    if state_backend is None:
        state_backend = _EXECUTION_DEFAULTS.state_backend
    base = np.random.SeedSequence(seed)
    # The extra child seeds the fast-mode batch generator; the first
    # ``repetitions`` children are identical to what the serial path spawns.
    children = base.spawn(repetitions + 1)
    seeds = [int(s.generate_state(1)[0]) for s in children[:repetitions]]
    jobs = tuple(
        Job(graph=graph, protocol=protocol, seed=s, **job_options) for s in seeds
    )
    plan = ExecutionPlan(
        jobs=jobs,
        processes=processes,
        batch=batch,
        batch_mode=batch_mode,
        fast_seed=children[-1],
        state_backend=state_backend,
    )
    return plan.execute()


def aggregate_runs(runs: Sequence[RunResultTrace]) -> Dict[str, object]:
    """Aggregate repeated runs into the quantities the theorems bound.

    Returns a dict with success rate, completion-round statistics
    (successful runs only), and energy statistics (all runs).
    """
    runs = list(runs)
    if not runs:
        raise ValueError("cannot aggregate zero runs")
    successes = [r for r in runs if r.completed]
    out: Dict[str, object] = {
        "runs": len(runs),
        "successes": len(successes),
        "success_rate": len(successes) / len(runs),
        "n": runs[0].n,
    }
    if successes:
        out["completion_rounds"] = summarize([r.completion_round for r in successes])
    out["total_transmissions"] = summarize(
        [r.energy.total_transmissions for r in runs]
    )
    out["max_tx_per_node"] = summarize([r.energy.max_per_node for r in runs])
    out["mean_tx_per_node"] = summarize([r.energy.mean_per_node for r in runs])
    return out
