"""E11 — Ablation: Phase 2 of Algorithm 1.

Algorithm 1 runs its single Phase-2 round (transmit with probability
``1/(d^T p)``) only when ``p ≤ n^{-2/5}``; in the dense regime the analysis
shows it is unnecessary.  This ablation runs Algorithm 1 with Phase 2 forced
on/off in both regimes:

* sparse regime (``p = 4 log n / n``): without Phase 2 the active pool
  entering Phase 3 is only ``Θ(d^T)`` instead of ``Θ(n)``, so completion
  becomes slower/unreliable — Phase 2 matters;
* dense regime (``p = n^{-0.35}``): the phase is skipped by the paper's rule
  and forcing it on/off makes no measurable difference.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.experiments.common import pick, threshold_p
from repro.experiments.protocols import ProtocolSpec
from repro.experiments.results import ExperimentResult
from repro.graphs.builders import GraphSpec
from repro.scenarios import ScenarioSpec, SweepCell, SweepGrid, run_scenario

EXPERIMENT_ID = "E11"
TITLE = "Ablation: Phase 2 of Algorithm 1 (needed iff p <= n^-2/5)"
CLAIM = (
    "Algorithm 1 executes Phase 2 only when p <= n^{-2/5}; Lemma 2.5 shows it "
    "is what boosts the active set to Theta(n) in the sparse regime, while in "
    "the dense regime it is unnecessary."
)

METRICS = ("success", "completion_round", "informed_fraction")


def _regimes(n: int) -> Dict[str, float]:
    return {
        "sparse (4 log n / n)": threshold_p(n),
        "dense (n^-0.3)": n ** (-0.3),
    }


def scenario(scale: str = "quick", seed: int = 0) -> ScenarioSpec:
    """The E11 ablation grid: n × regime × phase2 toggle."""
    sizes = pick(scale, quick=[1024], full=[1024, 2048, 4096])
    repetitions = pick(scale, quick=8, full=25)

    def bind(coords: Dict[str, object]) -> SweepCell:
        n = coords["n"]
        p = _regimes(n)[coords["regime"]]
        return SweepCell(
            coords={**coords, "p": p},
            graph=GraphSpec("gnp", {"n": n, "p": p}),
            protocol=ProtocolSpec(
                "algorithm1", {"p": p, "enable_phase2": coords["phase2"]}
            ),
            repetitions=repetitions,
        )

    grid = SweepGrid.from_axes(
        {
            "n": sizes,
            "regime": ["sparse (4 log n / n)", "dense (n^-0.3)"],
            "phase2": [True, False],
        },
        bind,
    )
    return ScenarioSpec(
        scenario_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        grid=grid,
        metrics=METRICS,
        seed=seed,
        parameters={
            "scale": scale,
            "sizes": sizes,
            "repetitions": repetitions,
            "seed": seed,
        },
    )


def run(
    scale: str = "quick", seed: int = 0, processes: Optional[int] = None
) -> ExperimentResult:
    """Toggle Phase 2 on/off in sparse and dense regimes."""
    spec = scenario(scale, seed)
    cells = run_scenario(spec, processes=processes)

    columns = [
        "n",
        "regime",
        "p",
        "phase2",
        "success_rate",
        "rounds (mean)",
        "informed fraction (mean over all runs)",
    ]
    rows: List[List[object]] = [
        [
            cell.coords["n"],
            cell.coords["regime"],
            cell.coords["p"],
            cell.coords["phase2"],
            cell.success_rate,
            cell.mean("completion_round"),
            cell.mean("informed_fraction"),
        ]
        for cell in cells
    ]

    notes = [
        "Expected shape: in the sparse regime disabling Phase 2 lowers the "
        "success rate / informed fraction (the Phase-3 pool is too small); in "
        "the dense regime the toggle changes nothing because the paper's rule "
        "skips Phase 2 there anyway.",
    ]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        columns=columns,
        rows=rows,
        notes=notes,
        parameters=dict(spec.parameters),
    )
