"""E4 — Theorem 3.2: Algorithm 2 gossiping on random networks.

Claim: on ``G(n, p)`` with ``p > δ log n / n``, Algorithm 2 completes
gossiping in ``O(d log n)`` rounds w.h.p. and every node performs ``O(log n)``
transmissions.

We sweep ``n`` and two degree regimes (``d ≈ 4 log n`` and ``d ≈ 8 log n``)
and report the completion round divided by ``d log n`` and the per-node
transmission counts divided by ``log n`` — both should stay bounded and
roughly flat.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.experiments.common import log2n, pick
from repro.experiments.protocols import ProtocolSpec
from repro.experiments.results import ExperimentResult, Series
from repro.graphs.builders import GraphSpec
from repro.scenarios import ScenarioSpec, SweepCell, SweepGrid, run_scenario

EXPERIMENT_ID = "E4"
TITLE = "Algorithm 2: gossiping in O(d log n) rounds with O(log n) messages per node"
CLAIM = (
    "Theorem 3.2: on G(n, p) with p > delta*log n/n, Algorithm 2 completes "
    "gossiping in O(d log n) rounds w.h.p. and every node performs O(log n) "
    "transmissions."
)

_DEGREE_FACTORS = {"d = 4 log n": 4.0, "d = 8 log n": 8.0}

METRICS = (
    "success",
    "completion_round",
    "max_tx_per_node",
    "mean_tx_per_node",
)


def scenario(scale: str = "quick", seed: int = 0) -> ScenarioSpec:
    """The E4 gossip sweep as a declarative grid: degree regime × n."""
    sizes = pick(scale, quick=[96, 128, 192], full=[128, 192, 256, 384, 512])
    repetitions = pick(scale, quick=3, full=10)

    def bind(coords: Dict[str, object]) -> SweepCell:
        n = coords["n"]
        factor = _DEGREE_FACTORS[coords["regime"]]
        p = min(1.0, factor * log2n(n) / n)
        return SweepCell(
            coords={**coords, "p": p, "d": n * p},
            graph=GraphSpec("gnp", {"n": n, "p": p}),
            protocol=ProtocolSpec("algorithm2", {"p": p}),
            repetitions=repetitions,
        )

    grid = SweepGrid.from_axes({"regime": list(_DEGREE_FACTORS), "n": sizes}, bind)
    return ScenarioSpec(
        scenario_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        grid=grid,
        metrics=METRICS,
        seed=seed,
        parameters={
            "scale": scale,
            "sizes": sizes,
            "repetitions": repetitions,
            "seed": seed,
        },
    )


def run(
    scale: str = "quick", seed: int = 0, processes: Optional[int] = None
) -> ExperimentResult:
    """Run the gossip sweep."""
    spec = scenario(scale, seed)
    cells = run_scenario(spec, processes=processes)

    columns = [
        "n",
        "regime",
        "d",
        "success_rate",
        "rounds (mean)",
        "rounds / (d log2 n)",
        "max tx/node (mean)",
        "max tx/node / log2 n",
        "mean tx/node (mean)",
    ]
    rows: List[List[object]] = []
    per_regime_series: Dict[str, Series] = {
        regime: Series(
            name=f"rounds / (d log n) [{regime}]",
            x=[],
            y=[],
            x_label="n",
            y_label="normalised gossip time",
        )
        for regime in _DEGREE_FACTORS
    }

    for cell in cells:
        n = cell.coords["n"]
        regime_name = cell.coords["regime"]
        d = cell.coords["d"]
        rounds_mean = cell.mean("completion_round")
        max_tx_mean = cell.mean("max_tx_per_node")
        rows.append(
            [
                n,
                regime_name,
                d,
                cell.success_rate,
                rounds_mean,
                rounds_mean / (d * log2n(n)) if rounds_mean is not None else None,
                max_tx_mean,
                max_tx_mean / log2n(n),
                cell.mean("mean_tx_per_node"),
            ]
        )
        if rounds_mean is not None:
            series = per_regime_series[regime_name]
            series.x.append(float(n))
            series.y.append(rounds_mean / (d * log2n(n)))

    notes = [
        "Both normalised columns (rounds / (d log n) and max tx per node / log n) "
        "should be roughly constant across n — that is the Theorem 3.2 shape.",
        "The energy is measured at completion; the protocol's full schedule is "
        "C*d*log n rounds, so per-node energy over the full schedule is C*log n "
        "by construction (each round is an independent Bernoulli(1/d)).",
    ]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        columns=columns,
        rows=rows,
        series=list(per_regime_series.values()),
        notes=notes,
        parameters=dict(spec.parameters),
    )
