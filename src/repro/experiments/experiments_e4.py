"""E4 — Theorem 3.2: Algorithm 2 gossiping on random networks.

Claim: on ``G(n, p)`` with ``p > δ log n / n``, Algorithm 2 completes
gossiping in ``O(d log n)`` rounds w.h.p. and every node performs ``O(log n)``
transmissions.

We sweep ``n`` and two degree regimes (``d ≈ 4 log n`` and ``d ≈ 8 log n``)
and report the completion round divided by ``d log n`` and the per-node
transmission counts divided by ``log n`` — both should stay bounded and
roughly flat.
"""

from __future__ import annotations

from typing import List, Optional

from repro.experiments.common import log2n, pick, stat_mean
from repro.experiments.protocols import ProtocolSpec
from repro.experiments.results import ExperimentResult, Series
from repro.experiments.runner import aggregate_runs, repeat_job
from repro.graphs.builders import GraphSpec

EXPERIMENT_ID = "E4"
TITLE = "Algorithm 2: gossiping in O(d log n) rounds with O(log n) messages per node"
CLAIM = (
    "Theorem 3.2: on G(n, p) with p > delta*log n/n, Algorithm 2 completes "
    "gossiping in O(d log n) rounds w.h.p. and every node performs O(log n) "
    "transmissions."
)


def run(
    scale: str = "quick", seed: int = 0, processes: Optional[int] = None
) -> ExperimentResult:
    """Run the gossip sweep."""
    sizes = pick(scale, quick=[96, 128, 192], full=[128, 192, 256, 384, 512])
    repetitions = pick(scale, quick=3, full=10)
    degree_factors = {"d = 4 log n": 4.0, "d = 8 log n": 8.0}

    columns = [
        "n",
        "regime",
        "d",
        "success_rate",
        "rounds (mean)",
        "rounds / (d log2 n)",
        "max tx/node (mean)",
        "max tx/node / log2 n",
        "mean tx/node (mean)",
    ]
    rows: List[List[object]] = []
    series: List[Series] = []

    for regime_name, factor in degree_factors.items():
        xs: List[float] = []
        ys: List[float] = []
        for n in sizes:
            p = min(1.0, factor * log2n(n) / n)
            d = n * p
            runs = repeat_job(
                GraphSpec("gnp", {"n": n, "p": p}),
                ProtocolSpec("algorithm2", {"p": p}),
                repetitions=repetitions,
                seed=seed,
                processes=processes,
            )
            agg = aggregate_runs(runs)
            rounds_mean = stat_mean(agg.get("completion_rounds"))
            max_tx_mean = stat_mean(agg["max_tx_per_node"])
            rows.append(
                [
                    n,
                    regime_name,
                    d,
                    agg["success_rate"],
                    rounds_mean,
                    rounds_mean / (d * log2n(n)) if rounds_mean is not None else None,
                    max_tx_mean,
                    max_tx_mean / log2n(n),
                    stat_mean(agg["mean_tx_per_node"]),
                ]
            )
            if rounds_mean is not None:
                xs.append(float(n))
                ys.append(rounds_mean / (d * log2n(n)))
        series.append(
            Series(
                name=f"rounds / (d log n) [{regime_name}]",
                x=xs,
                y=ys,
                x_label="n",
                y_label="normalised gossip time",
            )
        )

    notes = [
        "Both normalised columns (rounds / (d log n) and max tx per node / log n) "
        "should be roughly constant across n — that is the Theorem 3.2 shape.",
        "The energy is measured at completion; the protocol's full schedule is "
        "C*d*log n rounds, so per-node energy over the full schedule is C*log n "
        "by construction (each round is an independent Bernoulli(1/d)).",
    ]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        columns=columns,
        rows=rows,
        series=series,
        notes=notes,
        parameters={"scale": scale, "sizes": sizes, "repetitions": repetitions, "seed": seed},
    )
