"""E12 — Ablation: the window/length constant β.

Both Algorithm 1 (Phase-3 length ``β log n``) and Algorithm 3 (active window
``β log² n``) hide a constant β in their O(·).  This ablation sweeps β and
reports success rate and energy: reliability should saturate once β passes a
small constant, while energy grows roughly linearly in β — justifying the
defaults used elsewhere in the repository.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.experiments.common import pick, threshold_p
from repro.experiments.protocols import ProtocolSpec
from repro.experiments.results import ExperimentResult, Series
from repro.graphs.builders import GraphSpec, build_network
from repro.graphs.properties import source_eccentricity
from repro.scenarios import ScenarioSpec, SweepCell, SweepGrid, run_scenario

EXPERIMENT_ID = "E12"
TITLE = "Ablation: the beta constants of Algorithms 1 and 3"
CLAIM = (
    "The proofs require a sufficiently large constant beta (Phase-3 length "
    "beta*log n for Algorithm 1; active window beta*log^2 n for Algorithm 3). "
    "Success should saturate beyond a small beta while energy keeps growing."
)

METRICS = (
    "success",
    "completion_round",
    "mean_tx_per_node",
    "total_tx",
)


def scenario(scale: str = "quick", seed: int = 0) -> ScenarioSpec:
    """The E12 ablation grid: algorithm × beta."""
    betas = pick(scale, quick=[1.0, 2.0, 4.0, 8.0], full=[0.5, 1.0, 2.0, 4.0, 8.0, 16.0])
    repetitions = pick(scale, quick=6, full=20)

    # Algorithm 1 on a sparse G(n, p).
    n = pick(scale, quick=1024, full=2048)
    p = threshold_p(n)
    gnp_spec = GraphSpec("gnp", {"n": n, "p": p})

    # Algorithm 3 on a path of cliques (deterministic: measure D once).
    clique_spec = GraphSpec("path_of_cliques", {"num_cliques": 10, "clique_size": 10})
    diameter = source_eccentricity(build_network(clique_spec, rng=seed), 0)

    def bind(coords: Dict[str, object]) -> SweepCell:
        beta = coords["beta"]
        if coords["algorithm"] == "algorithm1":
            graph = gnp_spec
            protocol = ProtocolSpec("algorithm1", {"p": p, "beta": beta})
        else:
            graph = clique_spec
            protocol = ProtocolSpec(
                "algorithm3", {"diameter": diameter, "beta": beta}
            )
        return SweepCell(
            coords=dict(coords),
            graph=graph,
            protocol=protocol,
            repetitions=repetitions,
            job_options={"run_to_quiescence": True},
        )

    grid = SweepGrid.from_axes(
        {"algorithm": ["algorithm1", "algorithm3"], "beta": betas}, bind
    )
    return ScenarioSpec(
        scenario_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        grid=grid,
        metrics=METRICS,
        seed=seed,
        parameters={
            "scale": scale,
            "betas": betas,
            "repetitions": repetitions,
            "seed": seed,
        },
    )


def run(
    scale: str = "quick", seed: int = 0, processes: Optional[int] = None
) -> ExperimentResult:
    """Sweep β for both algorithms."""
    spec = scenario(scale, seed)
    cells = run_scenario(spec, processes=processes)

    columns = [
        "algorithm",
        "beta",
        "success_rate",
        "rounds (mean)",
        "mean tx/node",
        "total tx (mean)",
    ]
    rows: List[List[object]] = []
    success_series: Dict[str, Series] = {
        algorithm: Series(
            name=f"{algorithm} success vs beta",
            x=[],
            y=[],
            x_label="beta",
            y_label="success rate",
        )
        for algorithm in ("algorithm1", "algorithm3")
    }

    for cell in cells:
        algorithm = cell.coords["algorithm"]
        beta = cell.coords["beta"]
        rows.append(
            [
                algorithm,
                beta,
                cell.success_rate,
                cell.mean("completion_round"),
                cell.mean("mean_tx_per_node"),
                cell.mean("total_tx"),
            ]
        )
        success_series[algorithm].x.append(beta)
        success_series[algorithm].y.append(cell.success_rate)

    notes = [
        "Success saturates at 1.0 once beta passes a small constant; the energy "
        "columns keep growing with beta (linearly for Algorithm 3, and for "
        "Algorithm 1 only through the longer Phase 3, which still respects the "
        "at-most-one-transmission rule).",
    ]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        columns=columns,
        rows=rows,
        series=list(success_series.values()),
        notes=notes,
        parameters=dict(spec.parameters),
    )
