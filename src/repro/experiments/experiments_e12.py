"""E12 — Ablation: the window/length constant β.

Both Algorithm 1 (Phase-3 length ``β log n``) and Algorithm 3 (active window
``β log² n``) hide a constant β in their O(·).  This ablation sweeps β and
reports success rate and energy: reliability should saturate once β passes a
small constant, while energy grows roughly linearly in β — justifying the
defaults used elsewhere in the repository.
"""

from __future__ import annotations

from typing import List, Optional

from repro.experiments.common import pick, stat_mean, threshold_p
from repro.experiments.protocols import ProtocolSpec
from repro.experiments.results import ExperimentResult, Series
from repro.experiments.runner import aggregate_runs, repeat_job
from repro.graphs.builders import GraphSpec, build_network
from repro.graphs.properties import source_eccentricity

EXPERIMENT_ID = "E12"
TITLE = "Ablation: the beta constants of Algorithms 1 and 3"
CLAIM = (
    "The proofs require a sufficiently large constant beta (Phase-3 length "
    "beta*log n for Algorithm 1; active window beta*log^2 n for Algorithm 3). "
    "Success should saturate beyond a small beta while energy keeps growing."
)


def run(
    scale: str = "quick", seed: int = 0, processes: Optional[int] = None
) -> ExperimentResult:
    """Sweep β for both algorithms."""
    betas = pick(scale, quick=[1.0, 2.0, 4.0, 8.0], full=[0.5, 1.0, 2.0, 4.0, 8.0, 16.0])
    repetitions = pick(scale, quick=6, full=20)

    columns = [
        "algorithm",
        "beta",
        "success_rate",
        "rounds (mean)",
        "mean tx/node",
        "total tx (mean)",
    ]
    rows: List[List[object]] = []
    series: List[Series] = []

    # --- Algorithm 1 on a sparse G(n, p). ---
    n = pick(scale, quick=1024, full=2048)
    p = threshold_p(n)
    alg1_success = Series(
        name="algorithm1 success vs beta", x=[], y=[], x_label="beta", y_label="success rate"
    )
    for beta in betas:
        runs = repeat_job(
            GraphSpec("gnp", {"n": n, "p": p}),
            ProtocolSpec("algorithm1", {"p": p, "beta": beta}),
            repetitions=repetitions,
            seed=seed,
            processes=processes,
            run_to_quiescence=True,
        )
        agg = aggregate_runs(runs)
        rows.append(
            [
                "algorithm1",
                beta,
                agg["success_rate"],
                stat_mean(agg.get("completion_rounds")),
                stat_mean(agg["mean_tx_per_node"]),
                stat_mean(agg["total_transmissions"]),
            ]
        )
        alg1_success.x.append(beta)
        alg1_success.y.append(agg["success_rate"])
    series.append(alg1_success)

    # --- Algorithm 3 on a path of cliques. ---
    spec = GraphSpec("path_of_cliques", {"num_cliques": 10, "clique_size": 10})
    network = build_network(spec, rng=seed)
    diameter = source_eccentricity(network, 0)
    alg3_success = Series(
        name="algorithm3 success vs beta", x=[], y=[], x_label="beta", y_label="success rate"
    )
    for beta in betas:
        runs = repeat_job(
            spec,
            ProtocolSpec("algorithm3", {"diameter": diameter, "beta": beta}),
            repetitions=repetitions,
            seed=seed,
            processes=processes,
            run_to_quiescence=True,
        )
        agg = aggregate_runs(runs)
        rows.append(
            [
                "algorithm3",
                beta,
                agg["success_rate"],
                stat_mean(agg.get("completion_rounds")),
                stat_mean(agg["mean_tx_per_node"]),
                stat_mean(agg["total_transmissions"]),
            ]
        )
        alg3_success.x.append(beta)
        alg3_success.y.append(agg["success_rate"])
    series.append(alg3_success)

    notes = [
        "Success saturates at 1.0 once beta passes a small constant; the energy "
        "columns keep growing with beta (linearly for Algorithm 3, and for "
        "Algorithm 1 only through the longer Phase 3, which still respects the "
        "at-most-one-transmission rule).",
    ]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        columns=columns,
        rows=rows,
        series=series,
        notes=notes,
        parameters={"scale": scale, "betas": betas, "repetitions": repetitions, "seed": seed},
    )
