"""E8 — Theorem 4.4 (Fig. 2): per-node energy lower bound for fast oblivious broadcast.

Claim: on the layered star-and-path network of Fig. 2 (parameter ``n``,
diameter ``D``), any oblivious algorithm with a *time-invariant* distribution
that finishes in ``c·D·log(n/D)`` rounds w.h.p. must spend an expected
``Ω(log² n / log(n/D))`` transmissions per node.  The mechanism: the star
cascade forces nodes to stay active ``≈ ln² n`` rounds (some star level is hit
with probability only ``1/ln n`` per round), while the path forces the
distribution's mean ``µ`` to be ``≥ 1/(2c·log(n/D))`` — energy is the product.

Experiment: we sweep the constant per-round probability ``q`` (the
distribution's mean µ = q) of the time-invariant protocol on the Theorem-4.4
network and record, for each q, the completion time and the per-node
transmissions of the star-leaf nodes.  The resulting (time, energy) frontier
shows the forced tradeoff; the Algorithm-3 point (which is *not*
time-invariant and exploits knowledge of D) is added for reference.

Both measurements need the star-leaf node indices of the construction, so
they run as probe cells (one per swept ``q``, one for the reference point).
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, List, Optional

import numpy as np

from repro._util.rng import spawn_generators
from repro.core.broadcast_general import KnownDiameterBroadcast
from repro.core.oblivious import TimeInvariantBroadcast
from repro.experiments.common import pick
from repro.experiments.results import ExperimentResult, Series
from repro.graphs.lowerbound import theorem44_network
from repro.radio.engine import SimulationEngine
from repro.scenarios import ScenarioSpec, SweepCell, SweepGrid, register_probe, run_scenario

EXPERIMENT_ID = "E8"
TITLE = "Theorem 4.4: time vs per-node energy frontier on the Fig. 2 network"
CLAIM = (
    "Theorem 4.4: on the layered lower-bound network, any oblivious algorithm "
    "with a time-invariant distribution finishing in c*D*log(n/D) rounds needs "
    "an expected log^2 n / (max{4c,8} log(n/D)) transmissions per node."
)

METRICS = ("success", "rounds", "leaf_tx")


def _network_parameters(n_param: int):
    log_n = max(1.0, math.log2(n_param))
    diameter = int(math.ceil(4 * log_n)) + 2 * int(math.floor(log_n)) + 2
    return log_n, diameter


@register_probe("e8.time_invariant_frontier")
def _frontier_probe(params, seed, repetitions) -> Iterator[dict]:
    """Fixed-q time-invariant broadcast on the Fig. 2 gadget."""
    n_param = params["n"]
    q = params["q"]
    log_n, diameter = _network_parameters(n_param)
    network, structure = theorem44_network(n_param, diameter, return_structure=True)
    leaves = np.concatenate(structure.star_leaves)
    horizon = int(math.ceil(80.0 * log_n / max(q, 1e-6))) + 8 * diameter
    generators = spawn_generators(seed, repetitions)
    for rep in range(repetitions):
        protocol = TimeInvariantBroadcast(q, source=structure.source)
        engine = SimulationEngine(keep_arrays=True)
        result = engine.run(network, protocol, rng=generators[rep], max_rounds=horizon)
        sample: Dict[str, object] = {"success": float(result.completed)}
        if result.completed:
            sample["rounds"] = float(result.completion_round)
            sample["leaf_tx"] = float(
                result.per_node_transmissions[leaves].mean()
            )
        yield sample


@register_probe("e8.algorithm3_reference")
def _reference_probe(params, seed, repetitions) -> Iterator[dict]:
    """Algorithm 3 (knows D, not time-invariant) on the same gadget."""
    n_param = params["n"]
    _, diameter = _network_parameters(n_param)
    network, structure = theorem44_network(n_param, diameter, return_structure=True)
    leaves = np.concatenate(structure.star_leaves)
    generators = spawn_generators(seed + 1, repetitions)
    for rep in range(repetitions):
        protocol = KnownDiameterBroadcast(diameter, source=structure.source)
        engine = SimulationEngine(keep_arrays=True, run_to_quiescence=True)
        result = engine.run(network, protocol, rng=generators[rep])
        sample: Dict[str, object] = {"success": float(result.completed)}
        if result.completed:
            sample["rounds"] = float(result.completion_round)
            sample["leaf_tx"] = float(
                result.per_node_transmissions[leaves].mean()
            )
        yield sample


def scenario(scale: str = "quick", seed: int = 0) -> ScenarioSpec:
    """The E8 grid: a q axis of frontier probes plus the reference point."""
    n_param = pick(scale, quick=64, full=256)
    repetitions = pick(scale, quick=5, full=15)
    q_values = pick(
        scale,
        quick=[0.5, 0.25, 0.1, 0.05],
        full=[0.5, 0.35, 0.25, 0.15, 0.1, 0.05, 0.025, 0.0125],
    )

    cells: List[SweepCell] = [
        SweepCell(
            coords={"protocol": "time-invariant", "q": q},
            kind="probe",
            probe="e8.time_invariant_frontier",
            params={"n": n_param, "q": q},
            repetitions=repetitions,
        )
        for q in q_values
    ]
    cells.append(
        SweepCell(
            coords={"protocol": "algorithm3 (reference)", "q": None},
            kind="probe",
            probe="e8.algorithm3_reference",
            params={"n": n_param},
            repetitions=repetitions,
        )
    )

    _, diameter = _network_parameters(n_param)
    return ScenarioSpec(
        scenario_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        grid=SweepGrid(cells=tuple(cells)),
        metrics=METRICS,
        seed=seed,
        parameters={
            "scale": scale,
            "n": n_param,
            "diameter": diameter,
            "q_values": q_values,
            "repetitions": repetitions,
            "seed": seed,
        },
    )


def run(
    scale: str = "quick", seed: int = 0, processes: Optional[int] = None
) -> ExperimentResult:
    """Trace the (time, per-node energy) frontier of time-invariant protocols."""
    spec = scenario(scale, seed)
    cells = run_scenario(spec, processes=processes)

    n_param = spec.parameters["n"]
    diameter = spec.parameters["diameter"]
    log_n = max(1.0, math.log2(n_param))
    lam = max(1.0, math.log2(n_param / diameter))

    columns = [
        "protocol",
        "q (per-round prob)",
        "success_rate",
        "rounds (mean)",
        "leaf tx/node (mean)",
        "rounds x energy / log^2 n",
    ]
    rows: List[List[object]] = []
    frontier = Series(
        name="time vs per-node energy (time-invariant protocols)",
        x=[],
        y=[],
        x_label="completion rounds",
        y_label="leaf transmissions per node",
    )

    for cell in cells:
        protocol = cell.coords["protocol"]
        q = cell.coords["q"]
        completed = cell.count("rounds") > 0
        mean_time = cell.mean("rounds")
        mean_energy = cell.mean("leaf_tx")
        if mean_time is None:
            mean_time = float("nan")
            mean_energy = float("nan")
        if protocol == "time-invariant":
            rows.append(
                [
                    protocol,
                    q,
                    cell.success_rate,
                    mean_time,
                    mean_energy,
                    (mean_time * q) / (log_n**2) if completed else None,
                ]
            )
            if completed:
                frontier.x.append(mean_time)
                frontier.y.append(mean_energy)
        else:
            rows.append(
                [protocol, None, cell.success_rate, mean_time, mean_energy, None]
            )

    # The probe builds the same construction; report its size for the notes.
    network, _ = theorem44_network(n_param, diameter, return_structure=True)
    notes = [
        f"network: Theorem 4.4 construction with n={n_param}, D={diameter}, "
        f"log(n/D)={lam:.2f}, {network.n} nodes",
        "For the time-invariant family the product (rounds x per-round "
        "probability) stays Ω(log^2 n): making q larger shortens the path "
        "traversal but multiplies per-node energy, making q smaller saves "
        "energy but blows up the star-cascade time — the frontier never "
        "enters the fast-and-cheap corner, which is the Theorem 4.4 statement.",
    ]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        columns=columns,
        rows=rows,
        series=[frontier],
        notes=notes,
        parameters=dict(spec.parameters),
    )
