"""E8 — Theorem 4.4 (Fig. 2): per-node energy lower bound for fast oblivious broadcast.

Claim: on the layered star-and-path network of Fig. 2 (parameter ``n``,
diameter ``D``), any oblivious algorithm with a *time-invariant* distribution
that finishes in ``c·D·log(n/D)`` rounds w.h.p. must spend an expected
``Ω(log² n / log(n/D))`` transmissions per node.  The mechanism: the star
cascade forces nodes to stay active ``≈ ln² n`` rounds (some star level is hit
with probability only ``1/ln n`` per round), while the path forces the
distribution's mean ``µ`` to be ``≥ 1/(2c·log(n/D))`` — energy is the product.

Experiment: we sweep the constant per-round probability ``q`` (the
distribution's mean µ = q) of the time-invariant protocol on the Theorem-4.4
network and record, for each q, the completion time and the per-node
transmissions of the star-leaf nodes.  The resulting (time, energy) frontier
shows the forced tradeoff; the Algorithm-3 point (which is *not*
time-invariant and exploits knowledge of D) is added for reference.
"""

from __future__ import annotations

import math
from typing import List, Optional

import numpy as np

from repro._util.rng import spawn_generators
from repro.core.broadcast_general import KnownDiameterBroadcast
from repro.core.oblivious import TimeInvariantBroadcast
from repro.experiments.common import pick
from repro.experiments.results import ExperimentResult, Series
from repro.graphs.lowerbound import theorem44_network
from repro.radio.engine import SimulationEngine

EXPERIMENT_ID = "E8"
TITLE = "Theorem 4.4: time vs per-node energy frontier on the Fig. 2 network"
CLAIM = (
    "Theorem 4.4: on the layered lower-bound network, any oblivious algorithm "
    "with a time-invariant distribution finishing in c*D*log(n/D) rounds needs "
    "an expected log^2 n / (max{4c,8} log(n/D)) transmissions per node."
)


def _run_fixed_q(network, structure, q, repetitions, seed, horizon):
    generators = spawn_generators(seed, repetitions)
    times: List[float] = []
    leaf_energy: List[float] = []
    successes = 0
    leaves = np.concatenate(structure.star_leaves)
    for rep in range(repetitions):
        protocol = TimeInvariantBroadcast(q, source=structure.source)
        engine = SimulationEngine(keep_arrays=True)
        result = engine.run(network, protocol, rng=generators[rep], max_rounds=horizon)
        successes += int(result.completed)
        if result.completed:
            times.append(result.completion_round)
            leaf_energy.append(float(result.per_node_transmissions[leaves].mean()))
    return successes, times, leaf_energy


def run(
    scale: str = "quick", seed: int = 0, processes: Optional[int] = None
) -> ExperimentResult:
    """Trace the (time, per-node energy) frontier of time-invariant protocols."""
    n_param = pick(scale, quick=64, full=256)
    repetitions = pick(scale, quick=5, full=15)
    q_values = pick(
        scale,
        quick=[0.5, 0.25, 0.1, 0.05],
        full=[0.5, 0.35, 0.25, 0.15, 0.1, 0.05, 0.025, 0.0125],
    )
    log_n = max(1.0, math.log2(n_param))
    diameter = int(math.ceil(4 * log_n)) + 2 * int(math.floor(log_n)) + 2
    network, structure = theorem44_network(n_param, diameter, return_structure=True)
    lam = max(1.0, math.log2(n_param / diameter))

    columns = [
        "protocol",
        "q (per-round prob)",
        "success_rate",
        "rounds (mean)",
        "leaf tx/node (mean)",
        "rounds x energy / log^2 n",
    ]
    rows: List[List[object]] = []
    frontier = Series(
        name="time vs per-node energy (time-invariant protocols)",
        x=[],
        y=[],
        x_label="completion rounds",
        y_label="leaf transmissions per node",
    )

    for q in q_values:
        horizon = int(math.ceil(80.0 * log_n / max(q, 1e-6))) + 8 * diameter
        successes, times, leaf_energy = _run_fixed_q(
            network, structure, q, repetitions, seed, horizon
        )
        mean_time = float(np.mean(times)) if times else float("nan")
        mean_energy = float(np.mean(leaf_energy)) if leaf_energy else float("nan")
        rows.append(
            [
                "time-invariant",
                q,
                successes / repetitions,
                mean_time,
                mean_energy,
                (mean_time * q) / (log_n**2) if times else None,
            ]
        )
        if times:
            frontier.x.append(mean_time)
            frontier.y.append(mean_energy)

    # Reference point: Algorithm 3 (not time-invariant; it knows D).
    generators = spawn_generators(seed + 1, repetitions)
    leaves = np.concatenate(structure.star_leaves)
    alg3_times, alg3_energy, alg3_success = [], [], 0
    for rep in range(repetitions):
        protocol = KnownDiameterBroadcast(diameter, source=structure.source)
        engine = SimulationEngine(keep_arrays=True, run_to_quiescence=True)
        result = engine.run(network, protocol, rng=generators[rep])
        alg3_success += int(result.completed)
        if result.completed:
            alg3_times.append(result.completion_round)
            alg3_energy.append(float(result.per_node_transmissions[leaves].mean()))
    rows.append(
        [
            "algorithm3 (reference)",
            None,
            alg3_success / repetitions,
            float(np.mean(alg3_times)) if alg3_times else float("nan"),
            float(np.mean(alg3_energy)) if alg3_energy else float("nan"),
            None,
        ]
    )

    notes = [
        f"network: Theorem 4.4 construction with n={n_param}, D={diameter}, "
        f"log(n/D)={lam:.2f}, {network.n} nodes",
        "For the time-invariant family the product (rounds x per-round "
        "probability) stays Ω(log^2 n): making q larger shortens the path "
        "traversal but multiplies per-node energy, making q smaller saves "
        "energy but blows up the star-cascade time — the frontier never "
        "enters the fast-and-cheap corner, which is the Theorem 4.4 statement.",
    ]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        columns=columns,
        rows=rows,
        series=[frontier],
        notes=notes,
        parameters={
            "scale": scale,
            "n": n_param,
            "diameter": diameter,
            "q_values": q_values,
            "repetitions": repetitions,
            "seed": seed,
        },
    )
