"""E17 — Robustness vs energy: broadcast under faulty worlds.

The paper's headline trade-off — near-optimal broadcast time at ``O(log n)``
transmissions per node — is proved for a perfectly reliable radio model.
This experiment asks what that energy frugality costs when the world
misbehaves: Algorithm 1 is run against the redundancy-heavy Bernoulli
flooding baseline across the fault families of
:mod:`repro.radio.environment` —

* i.i.d. delivery loss at increasing rates,
* Gilbert–Elliott burst loss,
* a crash/recovery churn event (a quarter of the nodes go dark mid-run),
* adversarial jamming of the loudest channels —

and the registered ``recovery_rounds`` / ``work_wasted`` metrics quantify
how long each protocol needs to re-complete after the last fault and how
much of its energy the environment destroyed.  The expectation (mirroring
the self-stabilisation literature's recovery-time lens): flooding buys
fault tolerance with energy, while the energy-optimal schedule degrades
earlier but wastes far fewer transmissions.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.experiments.common import pick, threshold_p
from repro.experiments.protocols import ProtocolSpec
from repro.experiments.results import ExperimentResult
from repro.graphs.builders import GraphSpec
from repro.scenarios import ScenarioSpec, SweepCell, SweepGrid, run_scenario

EXPERIMENT_ID = "E17"
TITLE = "Robustness vs energy: broadcast under loss, churn and jamming"
CLAIM = (
    "Section 1.2 assumes a reliable synchronous radio; the energy-optimal "
    "schedule of Algorithm 1 (Theorem 1.2) concentrates progress in few "
    "transmissions, so message loss, churn and jamming should delay or "
    "defeat it sooner than redundancy-heavy flooding — but with far less "
    "energy wasted on destroyed slots."
)

METRICS = (
    "success",
    "completion_round",
    "mean_tx_per_node",
    "recovery_rounds",
    "work_wasted",
)


def _fault_axis(churn_round: int, recover_round: int) -> Dict[str, Optional[dict]]:
    """World name -> environment spec (None = the reliable baseline)."""
    return {
        "reliable": None,
        "loss 10%": {"name": "iid_loss", "params": {"rx_loss": 0.1}},
        "loss 30%": {"name": "iid_loss", "params": {"rx_loss": 0.3}},
        "burst loss": {
            "name": "burst_loss",
            "params": {"p_bad": 0.08, "p_good": 0.25},
        },
        "churn 25%": {
            "name": "churn",
            "params": {
                "events": [
                    {"round": churn_round, "crash_fraction": 0.25},
                    {"round": recover_round, "recover_all": True},
                ]
            },
        },
        "jam k=2": {"name": "jam", "params": {"k": 2}},
    }


def scenario(scale: str = "quick", seed: int = 0) -> ScenarioSpec:
    """The E17 grid: fault world × protocol on threshold-regime G(n, p)."""
    n = pick(scale, quick=96, full=256)
    repetitions = pick(scale, quick=3, full=10)
    max_rounds = pick(scale, quick=600, full=1500)
    churn_round = pick(scale, quick=8, full=20)
    recover_round = pick(scale, quick=24, full=60)

    p = threshold_p(n)
    graph_spec = GraphSpec("gnp", {"n": n, "p": p})
    protocols = {
        "algorithm1": ProtocolSpec("algorithm1", {"p": p}),
        "bernoulli_flood": ProtocolSpec("bernoulli_flood", {"q": 0.1}),
    }

    cells: List[SweepCell] = []
    for world, environment in _fault_axis(churn_round, recover_round).items():
        for label, protocol in protocols.items():
            job_options: Dict[str, object] = {"max_rounds": max_rounds}
            if environment is not None:
                job_options["environment"] = environment
            cells.append(
                SweepCell(
                    coords={"world": world, "protocol": label, "n": n},
                    graph=graph_spec,
                    protocol=protocol,
                    repetitions=repetitions,
                    job_options=job_options,
                )
            )

    return ScenarioSpec(
        scenario_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        grid=SweepGrid(cells=tuple(cells)),
        metrics=METRICS,
        seed=seed,
        parameters={
            "scale": scale,
            "n": n,
            "p": p,
            "repetitions": repetitions,
            "max_rounds": max_rounds,
            "seed": seed,
        },
    )


def run(
    scale: str = "quick", seed: int = 0, processes: Optional[int] = None
) -> ExperimentResult:
    """Measure completion, recovery time and wasted work per fault world."""
    spec = scenario(scale, seed)
    cells = run_scenario(spec, processes=processes)

    columns = [
        "world",
        "protocol",
        "success_rate",
        "rounds (mean)",
        "mean tx/node",
        "recovery rounds (mean)",
        "work wasted (mean)",
    ]
    rows: List[List[object]] = []
    for cell in cells:
        rows.append(
            [
                cell.coords["world"],
                cell.coords["protocol"],
                cell.success_rate,
                cell.mean("completion_round"),
                cell.mean("mean_tx_per_node"),
                cell.mean("recovery_rounds"),
                cell.mean("work_wasted"),
            ]
        )

    # Compare each protocol's degradation against its own reliable-world row.
    baseline = {
        row[1]: row[3] for row in rows if row[0] == "reliable" and row[3] is not None
    }
    notes: List[str] = [
        "recovery_rounds counts rounds from the last fault event to "
        "completion; work_wasted counts charged transmissions lost in "
        "flight plus deliveries destroyed by the environment.",
    ]
    for label in ("algorithm1", "bernoulli_flood"):
        worst = [
            (row[0], row[3] / baseline[label])
            for row in rows
            if row[1] == label and row[0] != "reliable"
            and row[3] is not None and baseline.get(label)
        ]
        if worst:
            world, factor = max(worst, key=lambda item: item[1])
            notes.append(
                f"{label}: worst slowdown {factor:.1f}x (under {world}) "
                "relative to its reliable-world completion time."
            )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        columns=columns,
        rows=rows,
        notes=notes,
        parameters=dict(spec.parameters),
    )
