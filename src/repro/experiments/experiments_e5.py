"""E5 — Theorem 4.1: Algorithm 3 versus Czumaj–Rytter with known diameter.

Claims:

* Algorithm 3 completes in ``O(D log(n/D) + log² n)`` rounds with an expected
  ``O(log² n / log(n/D))`` transmissions per node;
* the (energy-bounded) Czumaj–Rytter algorithm achieves the same time bound
  but needs ``Θ(log² n)`` transmissions per node — i.e. a factor
  ``≈ log(n/D)`` more energy.

Workloads: paths of cliques (diameter ``Θ(L)``, dense local contention),
square grids, and a connected ``G(n, p)`` — spanning small, medium and large
``D`` relative to ``n``.  Energy is measured to quiescence (nodes keep
transmitting until their window expires; there is no termination detection in
the model).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from repro.experiments.common import log2n, pick
from repro.experiments.protocols import ProtocolSpec
from repro.experiments.results import ExperimentResult
from repro.graphs.builders import GraphSpec, build_network
from repro.graphs.properties import source_eccentricity
from repro.scenarios import ScenarioSpec, SweepCell, SweepGrid, run_scenario

EXPERIMENT_ID = "E5"
TITLE = "Algorithm 3 vs Czumaj-Rytter: same time, log(n/D)x fewer transmissions"
CLAIM = (
    "Theorem 4.1: with known diameter D, Algorithm 3 broadcasts in "
    "O(D log(n/D) + log^2 n) rounds with O(log^2 n / log(n/D)) transmissions "
    "per node, while the Czumaj-Rytter algorithm at the same time bound uses "
    "Theta(log^2 n) transmissions per node."
)

_PROTOCOLS = {
    "algorithm3": "algorithm3",
    "czumaj_rytter": "czumaj_rytter_known_d",
}

METRICS = ("success", "completion_round", "mean_tx_per_node")


def _workloads(scale: str):
    """(label, GraphSpec) pairs for the sweep."""
    if scale == "quick":
        return [
            ("path_of_cliques(12x12)", GraphSpec("path_of_cliques", {"num_cliques": 12, "clique_size": 12})),
            ("grid(12x12)", GraphSpec("grid", {"rows": 12, "cols": 12})),
        ]
    return [
        ("path_of_cliques(16x16)", GraphSpec("path_of_cliques", {"num_cliques": 16, "clique_size": 16})),
        ("path_of_cliques(32x8)", GraphSpec("path_of_cliques", {"num_cliques": 32, "clique_size": 8})),
        ("grid(16x16)", GraphSpec("grid", {"rows": 16, "cols": 16})),
        ("grid(24x24)", GraphSpec("grid", {"rows": 24, "cols": 24})),
        ("caterpillar(48x8)", GraphSpec("caterpillar", {"spine_length": 48, "leaves_per_node": 8})),
    ]


def scenario(scale: str = "quick", seed: int = 0) -> ScenarioSpec:
    """The E5 grid: known-diameter workload × protocol."""
    repetitions = pick(scale, quick=3, full=10)

    cells: List[SweepCell] = []
    for label, graph_spec in _workloads(scale):
        # Deterministic topologies: build once to measure n and D.
        network = build_network(graph_spec, rng=seed)
        n = network.n
        diameter = source_eccentricity(network, 0)
        lam = max(1.0, math.log2(n / diameter))
        for proto_label, proto_name in _PROTOCOLS.items():
            cells.append(
                SweepCell(
                    coords={
                        "workload": label,
                        "n": n,
                        "D": diameter,
                        "lambda": lam,
                        "protocol": proto_label,
                    },
                    graph=graph_spec,
                    protocol=ProtocolSpec(proto_name, {"diameter": diameter}),
                    repetitions=repetitions,
                    job_options={"run_to_quiescence": True},
                )
            )

    return ScenarioSpec(
        scenario_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        grid=SweepGrid(cells=tuple(cells)),
        metrics=METRICS,
        seed=seed,
        parameters={"scale": scale, "repetitions": repetitions, "seed": seed},
    )


def run(
    scale: str = "quick", seed: int = 0, processes: Optional[int] = None
) -> ExperimentResult:
    """Compare Algorithm 3 and the CR baseline on known-diameter workloads."""
    spec = scenario(scale, seed)
    cells = run_scenario(spec, processes=processes)

    columns = [
        "workload",
        "n",
        "D",
        "lambda",
        "protocol",
        "success_rate",
        "rounds (mean)",
        "rounds / (D*lambda + log^2 n)",
        "mean tx/node",
        "mean tx/node * lambda / log^2 n",
    ]
    rows: List[List[object]] = []
    energies: Dict[str, Dict[str, float]] = {}
    workload_info: Dict[str, Dict[str, float]] = {}

    for cell in cells:
        label = cell.coords["workload"]
        n = cell.coords["n"]
        diameter = cell.coords["D"]
        lam = cell.coords["lambda"]
        proto_label = cell.coords["protocol"]
        time_bound = diameter * lam + log2n(n) ** 2
        rounds_mean = cell.mean("completion_round")
        mean_tx = cell.mean("mean_tx_per_node")
        energies.setdefault(label, {})[proto_label] = mean_tx
        workload_info[label] = {"lam": lam}
        rows.append(
            [
                label,
                n,
                diameter,
                lam,
                proto_label,
                cell.success_rate,
                rounds_mean,
                (rounds_mean / time_bound) if rounds_mean is not None else None,
                mean_tx,
                mean_tx * lam / (log2n(n) ** 2),
            ]
        )

    ratio_notes: List[str] = []
    for label, per_protocol in energies.items():
        if per_protocol.get("algorithm3"):
            ratio = per_protocol["czumaj_rytter"] / per_protocol["algorithm3"]
            lam = workload_info[label]["lam"]
            ratio_notes.append(
                f"{label}: CR / Algorithm-3 energy ratio = {ratio:.2f} "
                f"(paper predicts ≈ log(n/D) = {lam:.2f})"
            )

    notes = [
        "Energy is measured to quiescence (nodes transmit until their active "
        "window expires, as in the model without termination detection).",
        *ratio_notes,
    ]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        columns=columns,
        rows=rows,
        notes=notes,
        parameters=dict(spec.parameters),
    )
