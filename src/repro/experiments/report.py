"""Run a set of experiments and assemble a single Markdown report.

``repro report`` (and :func:`generate_report`) is the one-command way to
regenerate the measured side of EXPERIMENTS.md: it runs the requested
experiments, writes each result as JSON (so the raw numbers are archived) and
produces a Markdown document with every table, the notes, and the run
parameters.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence

from repro.experiments.common import execution_provenance
from repro.experiments.registry import all_experiments, run_experiment
from repro.experiments.results import ExperimentResult

__all__ = [
    "ReportPaths",
    "generate_report",
    "result_to_markdown",
    "accumulators_report",
]


@dataclass(frozen=True)
class ReportPaths:
    """Where :func:`generate_report` wrote its outputs."""

    report: Path
    json_files: List[Path]


def result_to_markdown(result: ExperimentResult) -> str:
    """Render one experiment result as a Markdown section."""
    lines: List[str] = []
    lines.append(f"## {result.experiment_id} — {result.title}")
    lines.append("")
    lines.append(f"**Claim.** {result.claim}")
    lines.append("")
    # Markdown table.
    header = "| " + " | ".join(str(c) for c in result.columns) + " |"
    separator = "|" + "|".join("---" for _ in result.columns) + "|"
    lines.append(header)
    lines.append(separator)
    for row in result.rows:
        cells = []
        for cell in row:
            if cell is None:
                cells.append("-")
            elif isinstance(cell, bool):
                cells.append("yes" if cell else "no")
            elif isinstance(cell, float):
                cells.append(f"{cell:.4g}")
            else:
                cells.append(str(cell))
        lines.append("| " + " | ".join(cells) + " |")
    if result.notes:
        lines.append("")
        for note in result.notes:
            lines.append(f"* {note}")
    if result.parameters:
        lines.append("")
        rendered = ", ".join(f"{k}={v}" for k, v in sorted(result.parameters.items()))
        lines.append(f"_Parameters: {rendered}_")
    lines.append("")
    return "\n".join(lines)


def accumulators_report(store) -> str:
    """Render every streaming-aggregation checkpoint persisted in ``store``.

    This is the ``repro report --accumulators`` view: the running reduction
    of each sweep cell (trials consumed so far, per-metric statistics) read
    straight from the checkpointed accumulator state — no traces are loaded
    and nothing is re-run, so it works mid-sweep and after interrupts.
    """
    from repro.analysis.streaming import AccumulatorSet
    from repro.analysis.tables import format_table
    from repro.scenarios.runtime import METRIC_SUMMARY_COLUMNS, metric_summary_rows
    from repro.scenarios.spec import SweepCell

    entries = store.aggregates.entries()
    if not entries:
        return f"no aggregation checkpoints in {store.root}"
    columns = ["cell", "trials", "of"] + METRIC_SUMMARY_COLUMNS
    rows = []
    for entry in entries:
        cell = SweepCell.from_dict(entry.get("cell", {}))
        accumulators = AccumulatorSet.from_state(entry.get("accumulators", {}))
        rows.extend(
            metric_summary_rows(
                [cell.label(), accumulators.trials, entry.get("trials_total")],
                accumulators,
                sort=True,
            )
        )
    header = (
        f"{len(entries)} aggregation checkpoint(s) in {store.root} "
        "(streamed state; no traces were read)"
    )
    return header + "\n\n" + format_table(columns, rows)


def generate_report(
    output_dir,
    *,
    experiment_ids: Optional[Sequence[str]] = None,
    scale: str = "quick",
    seed: int = 0,
    processes: Optional[int] = None,
    title: str = "Measured results",
) -> ReportPaths:
    """Run experiments and write ``report.md`` plus per-experiment JSON files.

    Parameters
    ----------
    output_dir:
        Directory to write into (created if missing).
    experiment_ids:
        Which experiments to include; defaults to all of them.
    scale, seed, processes:
        Forwarded to each experiment's ``run``.
    """
    output_dir = Path(output_dir)
    output_dir.mkdir(parents=True, exist_ok=True)
    if experiment_ids is None:
        experiment_ids = [m.EXPERIMENT_ID for m in all_experiments()]

    provenance = execution_provenance()
    store_note = (
        f", result store `{provenance['result_store']}`"
        if provenance["result_store"]
        else ", no result store"
    )
    sections: List[str] = [
        f"# {title}",
        "",
        f"Scale: `{scale}`, seed: `{seed}`.  Regenerate with "
        f"`repro report --scale {scale} --seed {seed}`.",
        "",
        f"Engine `{provenance['engine_version']}`, batch mode "
        f"`{provenance['batch_mode']}`, state backend "
        f"`{provenance['state_backend']}`{store_note}.",
        "",
    ]
    json_files: List[Path] = []
    for experiment_id in experiment_ids:
        result = run_experiment(
            experiment_id, scale=scale, seed=seed, processes=processes
        )
        json_path = output_dir / f"{result.experiment_id}.json"
        result.save(json_path)
        json_files.append(json_path)
        sections.append(result_to_markdown(result))

    report_path = output_dir / "report.md"
    report_path.write_text("\n".join(sections))
    return ReportPaths(report=report_path, json_files=json_files)
