"""E3 — Lemma 3.1: the diameter of directed ``G(n, p)``.

Claim: for ``p > δ log n / n`` the diameter is ``⌈log n / log d⌉`` w.h.p.
(with ``d = n p``).  We sample graphs, measure the exact source eccentricity
from a fixed node (for these sizes the graph is vertex-transitive in
distribution, so eccentricity from one node equals the diameter w.h.p.), and
compare with the predicted value.

No protocol runs here — the sweep is a pure graph-property measurement, so
it rides the scenario layer as a probe cell per ``(regime, n)``.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro._util.logmath import ceil_log_ratio
from repro._util.rng import spawn_generators
from repro.experiments.common import dense_p, pick, sparse_p, threshold_p
from repro.experiments.results import ExperimentResult
from repro.graphs.properties import source_eccentricity
from repro.graphs.random_digraph import random_digraph
from repro.scenarios import ScenarioSpec, SweepCell, SweepGrid, register_probe, run_scenario

EXPERIMENT_ID = "E3"
TITLE = "Diameter of directed G(n, p) (Lemma 3.1)"
CLAIM = (
    "Lemma 3.1: if p > delta*log n/n for a sufficiently large constant delta, "
    "the diameter of G(n, p) equals ceil(log n / log d) w.h.p."
)

_REGIMES = {
    "threshold (4 log n / n)": threshold_p,
    "sparse (n^-0.6)": sparse_p,
    "dense (n^-0.35)": dense_p,
}

METRICS = ("eccentricity", "ecc_match", "ecc_within1")


@register_probe("e3.eccentricity")
def _eccentricity_probe(params, seed, repetitions) -> Iterator[dict]:
    """Sample G(n, p) graphs and measure the source eccentricity."""
    n = params["n"]
    p = params["p"]
    predicted = params["predicted"]
    generators = spawn_generators(seed, repetitions)
    for rep in range(repetitions):
        network = random_digraph(n, p, rng=generators[rep])
        measured = source_eccentricity(network, 0)
        yield {
            "eccentricity": float(measured),
            "ecc_match": float(measured == predicted),
            "ecc_within1": float(measured <= predicted + 1),
        }


def scenario(scale: str = "quick", seed: int = 0) -> ScenarioSpec:
    """The E3 probe grid: regime × n."""
    sizes = pick(scale, quick=[256, 512, 1024], full=[256, 512, 1024, 2048, 4096])
    repetitions = pick(scale, quick=5, full=20)

    def bind(coords: Dict[str, object]) -> SweepCell:
        n = coords["n"]
        p = _REGIMES[coords["regime"]](n)
        d = n * p
        predicted = ceil_log_ratio(n, d)
        return SweepCell(
            coords={**coords, "d": d, "predicted": predicted},
            kind="probe",
            probe="e3.eccentricity",
            params={"n": n, "p": p, "predicted": predicted},
            repetitions=repetitions,
        )

    grid = SweepGrid.from_axes({"regime": list(_REGIMES), "n": sizes}, bind)
    return ScenarioSpec(
        scenario_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        grid=grid,
        metrics=METRICS,
        seed=seed,
        parameters={
            "scale": scale,
            "sizes": sizes,
            "repetitions": repetitions,
            "seed": seed,
        },
    )


def run(
    scale: str = "quick", seed: int = 0, processes: Optional[int] = None
) -> ExperimentResult:
    """Measure eccentricities of sampled G(n, p) graphs against the prediction."""
    spec = scenario(scale, seed)
    cells = run_scenario(spec, processes=processes)

    columns = [
        "n",
        "regime",
        "d",
        "predicted ceil(log n/log d)",
        "measured eccentricity (mean)",
        "measured (min..max)",
        "fraction == prediction",
        "fraction <= prediction + 1",
    ]
    rows: List[List[object]] = [
        [
            cell.coords["n"],
            cell.coords["regime"],
            cell.coords["d"],
            cell.coords["predicted"],
            cell.mean("eccentricity"),
            f"{int(cell.minimum('eccentricity'))}.."
            f"{int(cell.maximum('eccentricity'))}",
            cell.mean("ecc_match"),
            cell.mean("ecc_within1"),
        ]
        for cell in cells
    ]

    notes = [
        "The measured value is the eccentricity from a fixed source (a lower "
        "bound on the diameter that matches it w.h.p. for these symmetric "
        "models).",
        "Lemma 3.1 is asymptotic ((1 + o(1)) log n / log d): at these sizes the "
        "last BFS layer regularly needs one extra hop, so the honest check is "
        "the 'within +1' column; exact matches become the norm in the dense "
        "regime and at larger n (the full-scale sweep).",
    ]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        columns=columns,
        rows=rows,
        notes=notes,
        parameters=dict(spec.parameters),
    )
