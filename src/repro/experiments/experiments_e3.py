"""E3 — Lemma 3.1: the diameter of directed ``G(n, p)``.

Claim: for ``p > δ log n / n`` the diameter is ``⌈log n / log d⌉`` w.h.p.
(with ``d = n p``).  We sample graphs, measure the exact source eccentricity
from a fixed node (for these sizes the graph is vertex-transitive in
distribution, so eccentricity from one node equals the diameter w.h.p.), and
compare with the predicted value.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro._util.logmath import ceil_log_ratio
from repro._util.rng import spawn_generators
from repro.experiments.common import pick, threshold_p, sparse_p, dense_p
from repro.experiments.results import ExperimentResult
from repro.graphs.properties import source_eccentricity
from repro.graphs.random_digraph import random_digraph

EXPERIMENT_ID = "E3"
TITLE = "Diameter of directed G(n, p) (Lemma 3.1)"
CLAIM = (
    "Lemma 3.1: if p > delta*log n/n for a sufficiently large constant delta, "
    "the diameter of G(n, p) equals ceil(log n / log d) w.h.p."
)


def run(
    scale: str = "quick", seed: int = 0, processes: Optional[int] = None
) -> ExperimentResult:
    """Measure eccentricities of sampled G(n, p) graphs against the prediction."""
    sizes = pick(scale, quick=[256, 512, 1024], full=[256, 512, 1024, 2048, 4096])
    repetitions = pick(scale, quick=5, full=20)
    regimes = {
        "threshold (4 log n / n)": threshold_p,
        "sparse (n^-0.6)": sparse_p,
        "dense (n^-0.35)": dense_p,
    }

    columns = [
        "n",
        "regime",
        "d",
        "predicted ceil(log n/log d)",
        "measured eccentricity (mean)",
        "measured (min..max)",
        "fraction == prediction",
        "fraction <= prediction + 1",
    ]
    rows: List[List[object]] = []

    for regime_name, p_of in regimes.items():
        for n in sizes:
            p = p_of(n)
            d = n * p
            predicted = ceil_log_ratio(n, d)
            measured: List[int] = []
            generators = spawn_generators(seed, repetitions)
            for rep in range(repetitions):
                network = random_digraph(n, p, rng=generators[rep])
                measured.append(source_eccentricity(network, 0))
            measured_arr = np.asarray(measured)
            rows.append(
                [
                    n,
                    regime_name,
                    d,
                    predicted,
                    float(measured_arr.mean()),
                    f"{measured_arr.min()}..{measured_arr.max()}",
                    float((measured_arr == predicted).mean()),
                    float((measured_arr <= predicted + 1).mean()),
                ]
            )

    notes = [
        "The measured value is the eccentricity from a fixed source (a lower "
        "bound on the diameter that matches it w.h.p. for these symmetric "
        "models).",
        "Lemma 3.1 is asymptotic ((1 + o(1)) log n / log d): at these sizes the "
        "last BFS layer regularly needs one extra hop, so the honest check is "
        "the 'within +1' column; exact matches become the norm in the dense "
        "regime and at larger n (the full-scale sweep).",
    ]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        columns=columns,
        rows=rows,
        notes=notes,
        parameters={"scale": scale, "sizes": sizes, "repetitions": repetitions, "seed": seed},
    )
