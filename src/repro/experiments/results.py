"""Experiment result containers and serialisation."""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.analysis.tables import format_table

__all__ = ["ExperimentResult", "Series"]


@dataclass
class Series:
    """A named (x, y) series — the unit of "figure" reproduction."""

    name: str
    x: List[float]
    y: List[float]
    x_label: str = "x"
    y_label: str = "y"

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "x": list(self.x),
            "y": list(self.y),
            "x_label": self.x_label,
            "y_label": self.y_label,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "Series":
        return cls(
            name=str(payload["name"]),
            x=list(payload["x"]),
            y=list(payload["y"]),
            x_label=str(payload.get("x_label", "x")),
            y_label=str(payload.get("y_label", "y")),
        )


@dataclass
class ExperimentResult:
    """The output of one experiment run: a table, optional series, and notes.

    Attributes
    ----------
    experiment_id:
        ``"E1"`` … ``"E14"``.
    title:
        Short experiment name.
    claim:
        The paper's statement being checked.
    columns / rows:
        The result table (rows are plain lists; values must be JSON
        serialisable).
    series:
        Optional named (x, y) series for figure-style results.
    notes:
        Free-form findings (e.g. fitted constants, observed ratios).
    parameters:
        The sweep parameters used (scale, seeds, sizes, …).
    """

    experiment_id: str
    title: str
    claim: str
    columns: List[str]
    rows: List[List[object]] = field(default_factory=list)
    series: List[Series] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    parameters: Dict[str, object] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # Rendering
    # ------------------------------------------------------------------ #
    def render(self) -> str:
        """Human-readable report (table + notes)."""
        parts = [
            f"{self.experiment_id}: {self.title}",
            f"Claim: {self.claim}",
            "",
            format_table(self.columns, self.rows),
        ]
        if self.notes:
            parts.append("")
            parts.extend(f"* {note}" for note in self.notes)
        return "\n".join(parts)

    def to_csv(self) -> str:
        """The result table as CSV text."""
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(self.columns)
        writer.writerows(self.rows)
        return buffer.getvalue()

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #
    def as_dict(self) -> Dict[str, object]:
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "claim": self.claim,
            "columns": list(self.columns),
            "rows": [list(row) for row in self.rows],
            "series": [s.as_dict() for s in self.series],
            "notes": list(self.notes),
            "parameters": dict(self.parameters),
        }

    def to_json(self, *, indent: int = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent, default=_jsonify)

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ExperimentResult":
        return cls(
            experiment_id=str(payload["experiment_id"]),
            title=str(payload["title"]),
            claim=str(payload["claim"]),
            columns=list(payload["columns"]),
            rows=[list(row) for row in payload.get("rows", [])],
            series=[Series.from_dict(s) for s in payload.get("series", [])],
            notes=list(payload.get("notes", [])),
            parameters=dict(payload.get("parameters", {})),
        )

    @classmethod
    def from_json(cls, text: str) -> "ExperimentResult":
        return cls.from_dict(json.loads(text))

    def save(self, path) -> Path:
        """Write the JSON representation to ``path`` and return it."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json())
        return path

    @classmethod
    def load(cls, path) -> "ExperimentResult":
        return cls.from_json(Path(path).read_text())


def _jsonify(value):
    """Best-effort conversion of NumPy scalars/arrays for json.dumps."""
    import numpy as np

    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.bool_,)):
        return bool(value)
    raise TypeError(f"value of type {type(value).__name__} is not JSON serialisable")
