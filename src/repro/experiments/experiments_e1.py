"""E1 — Theorem 2.1: Algorithm 1 on random networks.

Claim: on ``G(n, p)`` with ``p > δ log n / n``, Algorithm 1 informs all nodes
w.h.p. in ``O(log n)`` rounds, every node transmits **at most once**, and the
expected total number of transmissions is ``O(log n / p)``.

For each ``(n, regime)`` we report the success rate, the completion round
divided by ``log₂ n`` (should stay bounded / roughly flat), the maximum
per-node transmission count over all runs (must be exactly ≤ 1), and the
total transmissions divided by ``log₂ n / p`` (should stay bounded).
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.analysis.scaling import fit_model
from repro.experiments.common import dense_p, log2n, pick, sparse_p, stat_mean, threshold_p
from repro.experiments.protocols import ProtocolSpec
from repro.experiments.results import ExperimentResult, Series
from repro.experiments.runner import aggregate_runs, repeat_job
from repro.graphs.builders import GraphSpec

EXPERIMENT_ID = "E1"
TITLE = "Algorithm 1: O(log n) broadcast with at most one transmission per node"
CLAIM = (
    "Theorem 2.1: on G(n, p) with p > delta*log n/n, Algorithm 1 completes "
    "broadcasting w.h.p. in O(log n) rounds, each node transmits at most once, "
    "and the expected total number of transmissions is O(log n / p)."
)

_REGIMES = {
    "threshold (4 log n / n)": threshold_p,
    "sparse (n^-0.6)": sparse_p,
    "dense (n^-0.35)": dense_p,
}


def run(
    scale: str = "quick", seed: int = 0, processes: Optional[int] = None
) -> ExperimentResult:
    """Run the E1 sweep and return its result table."""
    sizes = pick(scale, quick=[512, 1024, 2048], full=[256, 512, 1024, 2048, 4096, 8192])
    repetitions = pick(scale, quick=5, full=25)

    columns = [
        "n",
        "regime",
        "p",
        "success_rate",
        "rounds (mean)",
        "rounds / log2 n",
        "max tx/node (worst run)",
        "total tx (mean)",
        "total tx / (log2 n / p)",
    ]
    rows: List[List[object]] = []
    per_regime_series: Dict[str, Series] = {}

    for regime_name, p_of in _REGIMES.items():
        xs: List[float] = []
        ys: List[float] = []
        for n in sizes:
            p = p_of(n)
            runs = repeat_job(
                GraphSpec("gnp", {"n": n, "p": p}),
                ProtocolSpec("algorithm1", {"p": p}),
                repetitions=repetitions,
                seed=seed,
                processes=processes,
                run_to_quiescence=True,
            )
            agg = aggregate_runs(runs)
            rounds_mean = stat_mean(agg.get("completion_rounds"))
            worst_max_tx = max(r.energy.max_per_node for r in runs)
            total_tx_mean = stat_mean(agg["total_transmissions"])
            rows.append(
                [
                    n,
                    regime_name,
                    p,
                    agg["success_rate"],
                    rounds_mean,
                    (rounds_mean / log2n(n)) if rounds_mean is not None else None,
                    worst_max_tx,
                    total_tx_mean,
                    total_tx_mean / (log2n(n) / p),
                ]
            )
            if rounds_mean is not None:
                xs.append(float(n))
                ys.append(float(rounds_mean))
        per_regime_series[regime_name] = Series(
            name=f"completion rounds [{regime_name}]",
            x=xs,
            y=ys,
            x_label="n",
            y_label="rounds",
        )

    notes = []
    # Shape check: completion rounds vs log n in the threshold regime.
    series = per_regime_series["threshold (4 log n / n)"]
    if len(series.x) >= 2:
        fit = fit_model(series.x, series.y, lambda n: np.log2(n), name="log n")
        notes.append(
            f"threshold regime: completion rounds ≈ {fit.constant:.2f} * log2 n; "
            f"the ratio rounds/log2 n varies by only {fit.ratio_spread:.2f}x across "
            "the sweep (no growth with n beyond the log factor)"
        )
    worst_overall = max(row[6] for row in rows)
    notes.append(
        f"worst-case transmissions per node over all runs: {worst_overall} "
        "(Theorem 2.1 guarantees at most 1)"
    )

    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        columns=columns,
        rows=rows,
        series=list(per_regime_series.values()),
        notes=notes,
        parameters={"scale": scale, "sizes": sizes, "repetitions": repetitions, "seed": seed},
    )
