"""E1 — Theorem 2.1: Algorithm 1 on random networks.

Claim: on ``G(n, p)`` with ``p > δ log n / n``, Algorithm 1 informs all nodes
w.h.p. in ``O(log n)`` rounds, every node transmits **at most once**, and the
expected total number of transmissions is ``O(log n / p)``.

For each ``(n, regime)`` we report the success rate, the completion round
divided by ``log₂ n`` (should stay bounded / roughly flat), the maximum
per-node transmission count over all runs (must be exactly ≤ 1), and the
total transmissions divided by ``log₂ n / p`` (should stay bounded).

The sweep itself is declarative — :func:`scenario` builds the
(regime × n) grid — and :func:`run` keeps only the claim-specific derived
columns over the streamed aggregates.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.analysis.scaling import fit_model
from repro.experiments.common import dense_p, log2n, pick, sparse_p, threshold_p
from repro.experiments.protocols import ProtocolSpec
from repro.experiments.results import ExperimentResult, Series
from repro.graphs.builders import GraphSpec
from repro.scenarios import ScenarioSpec, SweepCell, SweepGrid, run_scenario

EXPERIMENT_ID = "E1"
TITLE = "Algorithm 1: O(log n) broadcast with at most one transmission per node"
CLAIM = (
    "Theorem 2.1: on G(n, p) with p > delta*log n/n, Algorithm 1 completes "
    "broadcasting w.h.p. in O(log n) rounds, each node transmits at most once, "
    "and the expected total number of transmissions is O(log n / p)."
)

_REGIMES = {
    "threshold (4 log n / n)": threshold_p,
    "sparse (n^-0.6)": sparse_p,
    "dense (n^-0.35)": dense_p,
}

METRICS = (
    "success",
    "completion_round",
    "total_tx",
    "max_tx_per_node",
    "mean_tx_per_node",
)


def scenario(scale: str = "quick", seed: int = 0) -> ScenarioSpec:
    """The E1 sweep as a declarative grid: regime × n."""
    sizes = pick(scale, quick=[512, 1024, 2048], full=[256, 512, 1024, 2048, 4096, 8192])
    repetitions = pick(scale, quick=5, full=25)

    def bind(coords: Dict[str, object]) -> SweepCell:
        n = coords["n"]
        p = _REGIMES[coords["regime"]](n)
        return SweepCell(
            coords={**coords, "p": p},
            graph=GraphSpec("gnp", {"n": n, "p": p}),
            protocol=ProtocolSpec("algorithm1", {"p": p}),
            repetitions=repetitions,
            job_options={"run_to_quiescence": True},
        )

    grid = SweepGrid.from_axes({"regime": list(_REGIMES), "n": sizes}, bind)
    return ScenarioSpec(
        scenario_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        grid=grid,
        metrics=METRICS,
        seed=seed,
        parameters={
            "scale": scale,
            "sizes": sizes,
            "repetitions": repetitions,
            "seed": seed,
        },
    )


def run(
    scale: str = "quick", seed: int = 0, processes: Optional[int] = None
) -> ExperimentResult:
    """Run the E1 sweep and return its result table."""
    spec = scenario(scale, seed)
    cells = run_scenario(spec, processes=processes)

    columns = [
        "n",
        "regime",
        "p",
        "success_rate",
        "rounds (mean)",
        "rounds / log2 n",
        "max tx/node (worst run)",
        "total tx (mean)",
        "total tx / (log2 n / p)",
    ]
    rows: List[List[object]] = []
    per_regime_series: Dict[str, Series] = {
        regime: Series(
            name=f"completion rounds [{regime}]",
            x=[],
            y=[],
            x_label="n",
            y_label="rounds",
        )
        for regime in _REGIMES
    }

    for cell in cells:
        n = cell.coords["n"]
        regime_name = cell.coords["regime"]
        p = cell.coords["p"]
        rounds_mean = cell.mean("completion_round")
        worst_max_tx = int(cell.maximum("max_tx_per_node"))
        total_tx_mean = cell.mean("total_tx")
        rows.append(
            [
                n,
                regime_name,
                p,
                cell.success_rate,
                rounds_mean,
                (rounds_mean / log2n(n)) if rounds_mean is not None else None,
                worst_max_tx,
                total_tx_mean,
                total_tx_mean / (log2n(n) / p),
            ]
        )
        if rounds_mean is not None:
            series = per_regime_series[regime_name]
            series.x.append(float(n))
            series.y.append(float(rounds_mean))

    notes = []
    # Shape check: completion rounds vs log n in the threshold regime.
    series = per_regime_series["threshold (4 log n / n)"]
    if len(series.x) >= 2:
        fit = fit_model(series.x, series.y, lambda n: np.log2(n), name="log n")
        notes.append(
            f"threshold regime: completion rounds ≈ {fit.constant:.2f} * log2 n; "
            f"the ratio rounds/log2 n varies by only {fit.ratio_spread:.2f}x across "
            "the sweep (no growth with n beyond the log factor)"
        )
    worst_overall = max(row[6] for row in rows)
    notes.append(
        f"worst-case transmissions per node over all runs: {worst_overall} "
        "(Theorem 2.1 guarantees at most 1)"
    )

    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        columns=columns,
        rows=rows,
        series=list(per_regime_series.values()),
        notes=notes,
        parameters=dict(spec.parameters),
    )
