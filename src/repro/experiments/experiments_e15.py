"""E15 — Ablation: robustness of the protocols to message erasure.

The paper's model is an ideal collision channel: a transmission is received
whenever it is the only one in range.  Real AdHoc links also lose packets to
fading.  This ablation perturbs the channel with i.i.d. erasure of otherwise
successful deliveries (:class:`repro.radio.collision.ErasureCollisionModel`)
and measures how each protocol's success rate, time and energy respond.

The interesting contrast is structural:

* **Algorithm 1** buys its ≤1-transmission-per-node energy optimality by
  giving every node exactly one shot — erased deliveries are never retried,
  so its success rate should degrade quickly with the erasure rate;
* **Algorithm 3** and **Decay** retransmit over a window / until completion,
  so they should absorb moderate erasure with only a time/energy penalty.

This quantifies the robustness cost of the paper's energy optimality — a
trade-off the paper does not discuss but that a deployment would care about.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.experiments.common import pick, threshold_p
from repro.experiments.protocols import ProtocolSpec
from repro.experiments.results import ExperimentResult, Series
from repro.graphs.builders import GraphSpec, build_network
from repro.graphs.properties import source_eccentricity
from repro.scenarios import ScenarioSpec, SweepCell, SweepGrid, run_scenario

EXPERIMENT_ID = "E15"
TITLE = "Ablation: erasure (fading) robustness of the broadcast protocols"
CLAIM = (
    "Model ablation (not a paper claim): Algorithm 1's at-most-one-"
    "transmission schedule cannot retry erased deliveries, while the windowed "
    "protocols (Algorithm 3, Decay) trade energy for robustness."
)

METRICS = (
    "success",
    "completion_round",
    "mean_tx_per_node",
    "max_tx_per_node",
)


def _workloads(
    scale: str, seed: int
) -> List[Tuple[str, GraphSpec, Dict[str, ProtocolSpec]]]:
    n_random = pick(scale, quick=512, full=2048)
    p = threshold_p(n_random)
    gnp_spec = GraphSpec("gnp", {"n": n_random, "p": p})

    clique_spec = GraphSpec("path_of_cliques", {"num_cliques": 10, "clique_size": 10})
    clique_net = build_network(clique_spec, rng=seed)
    clique_diameter = source_eccentricity(clique_net, 0)

    return [
        (
            f"gnp(n={n_random})",
            gnp_spec,
            {
                "algorithm1": ProtocolSpec("algorithm1", {"p": p}),
                "decay": ProtocolSpec("decay", {}),
            },
        ),
        (
            "path_of_cliques(10x10)",
            clique_spec,
            {
                "algorithm3": ProtocolSpec("algorithm3", {"diameter": clique_diameter}),
                "decay": ProtocolSpec("decay", {}),
            },
        ),
    ]


def scenario(scale: str = "quick", seed: int = 0) -> ScenarioSpec:
    """The E15 grid: workload × protocol × erasure rate."""
    erasure_rates = pick(
        scale, quick=[0.0, 0.1, 0.3], full=[0.0, 0.05, 0.1, 0.2, 0.3, 0.5]
    )
    repetitions = pick(scale, quick=5, full=15)

    cells: List[SweepCell] = []
    for workload_label, graph_spec, protocols in _workloads(scale, seed):
        for proto_label, proto_spec in protocols.items():
            for erasure in erasure_rates:
                cells.append(
                    SweepCell(
                        coords={
                            "workload": workload_label,
                            "protocol": proto_label,
                            "erasure": erasure,
                        },
                        graph=graph_spec,
                        protocol=proto_spec,
                        repetitions=repetitions,
                        job_options={
                            "run_to_quiescence": True,
                            "erasure_probability": float(erasure),
                        },
                    )
                )

    return ScenarioSpec(
        scenario_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        grid=SweepGrid(cells=tuple(cells)),
        metrics=METRICS,
        seed=seed,
        parameters={
            "scale": scale,
            "erasure_rates": list(erasure_rates),
            "repetitions": repetitions,
            "seed": seed,
        },
    )


def run(
    scale: str = "quick", seed: int = 0, processes: Optional[int] = None
) -> ExperimentResult:
    """Sweep the erasure probability for Algorithm 1, Algorithm 3 and Decay."""
    spec = scenario(scale, seed)
    cells = run_scenario(spec, processes=processes)

    columns = [
        "workload",
        "protocol",
        "erasure",
        "success_rate",
        "rounds (mean)",
        "mean tx/node",
        "max tx/node (worst run)",
    ]
    rows: List[List[object]] = []
    curves: Dict[Tuple[str, str], Series] = {}

    for cell in cells:
        workload_label = cell.coords["workload"]
        proto_label = cell.coords["protocol"]
        erasure = cell.coords["erasure"]
        rows.append(
            [
                workload_label,
                proto_label,
                erasure,
                cell.success_rate,
                cell.mean("completion_round"),
                cell.mean("mean_tx_per_node"),
                int(cell.maximum("max_tx_per_node")),
            ]
        )
        curve = curves.setdefault(
            (workload_label, proto_label),
            Series(
                name=f"success vs erasure [{proto_label} on {workload_label}]",
                x=[],
                y=[],
                x_label="erasure probability",
                y_label="success rate",
            ),
        )
        curve.x.append(float(erasure))
        curve.y.append(float(cell.success_rate))

    notes = [
        "Expected shape: Algorithm 1's success rate falls sharply once the "
        "erasure rate is non-trivial (a lost delivery is never retried), while "
        "Algorithm 3 and Decay stay reliable and pay with somewhat more time.",
        "This is a model ablation beyond the paper: it quantifies the "
        "robustness price of the at-most-one-transmission guarantee.",
    ]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        columns=columns,
        rows=rows,
        series=list(curves.values()),
        notes=notes,
        parameters=dict(spec.parameters),
    )
