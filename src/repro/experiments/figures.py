"""Figure-style output: ASCII charts and CSV series.

The paper has no measurement figures, but several of our experiments are
naturally curves (the Theorem 4.2 tradeoff frontier, the lower-bound success
curves).  :func:`ascii_chart` renders a quick terminal scatter so the CLI can
show the shape without any plotting dependency; :func:`series_to_csv` writes
the underlying numbers for external plotting.
"""

from __future__ import annotations

import io
from typing import List, Optional, Sequence

from repro.experiments.results import Series

__all__ = ["ascii_chart", "series_to_csv"]


def ascii_chart(
    series: Series,
    *,
    width: int = 60,
    height: int = 16,
    marker: str = "*",
) -> str:
    """Render a single (x, y) series as a crude ASCII scatter plot."""
    if len(series.x) != len(series.y):
        raise ValueError("series x and y must have equal length")
    if not series.x:
        return f"{series.name}: (empty series)"
    if width < 8 or height < 4:
        raise ValueError("width must be >= 8 and height >= 4")

    xs = [float(v) for v in series.x]
    ys = [float(v) for v in series.y]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for x, y in zip(xs, ys):
        col = int(round((x - x_min) / x_span * (width - 1)))
        row = int(round((y - y_min) / y_span * (height - 1)))
        grid[height - 1 - row][col] = marker

    lines = [f"{series.name}   ({series.x_label} vs {series.y_label})"]
    lines.append(f"y_max = {y_max:.4g}")
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width)
    lines.append(f"x: {x_min:.4g} .. {x_max:.4g}    y_min = {y_min:.4g}")
    return "\n".join(lines)


def series_to_csv(series_list: Sequence[Series]) -> str:
    """Concatenate several series into one long-format CSV string."""
    buffer = io.StringIO()
    buffer.write("series,x_label,y_label,x,y\n")
    for series in series_list:
        if len(series.x) != len(series.y):
            raise ValueError(f"series {series.name!r} has mismatched x/y lengths")
        for x, y in zip(series.x, series.y):
            buffer.write(f"{series.name},{series.x_label},{series.y_label},{x},{y}\n")
    return buffer.getvalue()
