"""E16 — Gossip baselines: Algorithm 2 against the composition-style gossips.

The paper positions Algorithm 2 as "the first gossiping algorithm specialised
on random networks": on ``G(n, p)`` it finishes in ``O(d log n)`` rounds with
``O(log n)`` transmissions per node, whereas the general-network route of the
related work composes broadcast procedures and pays ``Ω(n·polylog)`` time.
This experiment measures that gap on the same sampled networks:

* **Algorithm 2** (this paper);
* **uniform-scale gossip** — everyone transmits with a shared
  selection-sequence probability (the generic unknown-topology approach);
* **sequential broadcast gossip** — rumours are broadcast one epoch at a
  time (the trivial composition baseline);
* **random phone-call push gossip** — a different (collision-free) model,
  shown as the energy/time floor any radio protocol is fighting collisions to
  approach.  It runs as a :mod:`~repro.scenarios.probes` probe cell (its
  model has no radio jobs to compile).
"""

from __future__ import annotations

from typing import Iterator, List, Optional

import numpy as np

from repro._util.rng import spawn_generators
from repro.baselines.phone_call import run_push_gossip
from repro.experiments.common import log2n, pick, threshold_p
from repro.experiments.protocols import ProtocolSpec
from repro.experiments.results import ExperimentResult
from repro.graphs.builders import GraphSpec, build_network
from repro.scenarios import (
    ScenarioSpec,
    SweepCell,
    SweepGrid,
    register_probe,
    run_scenario,
)

EXPERIMENT_ID = "E16"
TITLE = "Gossip on random networks: Algorithm 2 vs composition-style baselines"
CLAIM = (
    "Section 1.3 / Theorem 3.2: Algorithm 2 gossips on G(n, p) in O(d log n) "
    "rounds with only O(log n) transmissions per node; the general-network "
    "composition approaches need polylogarithmic transmissions per node per "
    "rumour (Theta(log n) more energy overall) to reach comparable times on "
    "the same networks."
)

_PROTOCOLS = {
    "algorithm2": lambda p: ProtocolSpec("algorithm2", {"p": p}),
    "uniform_scale_gossip": lambda p: ProtocolSpec("uniform_gossip", {}),
    "sequential_broadcast_gossip": lambda p: ProtocolSpec("sequential_gossip", {}),
}

METRICS = ("success", "completion_round", "max_tx_per_node", "mean_tx_per_node")
_PC_METRICS = ("pc_rounds", "pc_max_tx", "pc_mean_tx")


@register_probe("e16.phone_call_push_gossip")
def _phone_call_gossip_probe(params, seed, repetitions) -> Iterator[dict]:
    """Collision-free push-gossip reference on fresh G(n, p) samples."""
    n = params["n"]
    p = params["p"]
    spec = GraphSpec("gnp", {"n": n, "p": p})
    generators = spawn_generators(seed + n, 2 * repetitions)
    for rep in range(repetitions):
        network = build_network(spec, rng=generators[2 * rep])
        outcome = run_push_gossip(network, rng=generators[2 * rep + 1])
        yield {
            "pc_rounds": float(outcome.completion_round),
            "pc_max_tx": float(outcome.max_per_node),
            "pc_mean_tx": float(outcome.mean_per_node),
        }


def scenario(scale: str = "quick", seed: int = 0) -> ScenarioSpec:
    """The E16 grid: n × (three gossip protocols + the phone-call probe)."""
    sizes = pick(scale, quick=[96, 160], full=[128, 192, 256, 384])
    repetitions = pick(scale, quick=3, full=8)

    cells: List[SweepCell] = []
    for n in sizes:
        p = threshold_p(n)
        d = n * p
        graph_spec = GraphSpec("gnp", {"n": n, "p": p})
        for label, proto_of in _PROTOCOLS.items():
            cells.append(
                SweepCell(
                    coords={"n": n, "d": d, "protocol": label},
                    graph=graph_spec,
                    protocol=proto_of(p),
                    repetitions=repetitions,
                )
            )
        cells.append(
            SweepCell(
                coords={"n": n, "d": d, "protocol": "push gossip (no collisions)"},
                kind="probe",
                probe="e16.phone_call_push_gossip",
                params={"n": n, "p": p},
                repetitions=repetitions,
                metrics=_PC_METRICS,
            )
        )

    return ScenarioSpec(
        scenario_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        grid=SweepGrid(cells=tuple(cells)),
        metrics=METRICS,
        seed=seed,
        parameters={
            "scale": scale,
            "sizes": sizes,
            "repetitions": repetitions,
            "seed": seed,
        },
    )


def run(
    scale: str = "quick", seed: int = 0, processes: Optional[int] = None
) -> ExperimentResult:
    """Compare the gossip protocols on a shared G(n, p) workload."""
    spec = scenario(scale, seed)
    cells = run_scenario(spec, processes=processes)

    columns = [
        "n",
        "d",
        "protocol",
        "success_rate",
        "rounds (mean)",
        "rounds / (d log2 n)",
        "max tx/node (mean)",
        "mean tx/node (mean)",
    ]
    rows: List[List[object]] = []

    for cell in cells:
        n = cell.coords["n"]
        d = cell.coords["d"]
        label = cell.coords["protocol"]
        if cell.cell.kind == "probe":
            pc_rounds = cell.mean("pc_rounds")
            rows.append(
                [
                    n,
                    d,
                    label,
                    1.0,
                    pc_rounds,
                    pc_rounds / (d * log2n(n)),
                    cell.mean("pc_max_tx"),
                    cell.mean("pc_mean_tx"),
                ]
            )
            continue
        rounds_mean = cell.mean("completion_round")
        rows.append(
            [
                n,
                d,
                label,
                cell.success_rate,
                rounds_mean,
                rounds_mean / (d * log2n(n)) if rounds_mean is not None else None,
                cell.mean("max_tx_per_node"),
                cell.mean("mean_tx_per_node"),
            ]
        )

    # Energy-advantage note computed from the measured rows.
    alg2_energy = [row[7] for row in rows if row[2] == "algorithm2" and row[7]]
    baseline_energy = [
        row[7]
        for row in rows
        if row[2] in ("uniform_scale_gossip", "sequential_broadcast_gossip") and row[7]
    ]
    notes = [
        "Algorithm 2's rounds / (d log n) stays Θ(1) and its per-node energy "
        "stays O(log n); the composition baselines reach similar completion "
        "times on these dense random networks only by having every node "
        "transmit with Θ(1/log n) probability in every round, which costs "
        "them several times more transmissions per node.",
        "The push-gossip row is the collision-free reference: it shows the "
        "time floor; its per-node energy equals its round count because every "
        "node calls a neighbour every round.",
    ]
    if alg2_energy and baseline_energy:
        notes.insert(
            1,
            "measured energy advantage of Algorithm 2 over the composition "
            f"baselines: {np.mean(baseline_energy) / np.mean(alg2_energy):.1f}x "
            "fewer transmissions per node at comparable or better completion time.",
        )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        columns=columns,
        rows=rows,
        notes=notes,
        parameters=dict(spec.parameters),
    )
