"""E16 — Gossip baselines: Algorithm 2 against the composition-style gossips.

The paper positions Algorithm 2 as "the first gossiping algorithm specialised
on random networks": on ``G(n, p)`` it finishes in ``O(d log n)`` rounds with
``O(log n)`` transmissions per node, whereas the general-network route of the
related work composes broadcast procedures and pays ``Ω(n·polylog)`` time.
This experiment measures that gap on the same sampled networks:

* **Algorithm 2** (this paper);
* **uniform-scale gossip** — everyone transmits with a shared
  selection-sequence probability (the generic unknown-topology approach);
* **sequential broadcast gossip** — rumours are broadcast one epoch at a
  time (the trivial composition baseline);
* **random phone-call push gossip** — a different (collision-free) model,
  shown as the energy/time floor any radio protocol is fighting collisions to
  approach.
"""

from __future__ import annotations

import math
from typing import List, Optional

import numpy as np

from repro._util.rng import spawn_generators
from repro.baselines.phone_call import run_push_gossip
from repro.experiments.common import log2n, pick, stat_mean, threshold_p
from repro.experiments.protocols import ProtocolSpec
from repro.experiments.results import ExperimentResult
from repro.experiments.runner import aggregate_runs, repeat_job
from repro.graphs.builders import GraphSpec, build_network

EXPERIMENT_ID = "E16"
TITLE = "Gossip on random networks: Algorithm 2 vs composition-style baselines"
CLAIM = (
    "Section 1.3 / Theorem 3.2: Algorithm 2 gossips on G(n, p) in O(d log n) "
    "rounds with only O(log n) transmissions per node; the general-network "
    "composition approaches need polylogarithmic transmissions per node per "
    "rumour (Theta(log n) more energy overall) to reach comparable times on "
    "the same networks."
)


def run(
    scale: str = "quick", seed: int = 0, processes: Optional[int] = None
) -> ExperimentResult:
    """Compare the gossip protocols on a shared G(n, p) workload."""
    sizes = pick(scale, quick=[96, 160], full=[128, 192, 256, 384])
    repetitions = pick(scale, quick=3, full=8)

    columns = [
        "n",
        "d",
        "protocol",
        "success_rate",
        "rounds (mean)",
        "rounds / (d log2 n)",
        "max tx/node (mean)",
        "mean tx/node (mean)",
    ]
    rows: List[List[object]] = []

    for n in sizes:
        p = threshold_p(n)
        d = n * p
        spec = GraphSpec("gnp", {"n": n, "p": p})
        protocols = {
            "algorithm2": ProtocolSpec("algorithm2", {"p": p}),
            "uniform_scale_gossip": ProtocolSpec("uniform_gossip", {}),
            "sequential_broadcast_gossip": ProtocolSpec("sequential_gossip", {}),
        }
        for label, proto in protocols.items():
            runs = repeat_job(
                spec,
                proto,
                repetitions=repetitions,
                seed=seed,
                processes=processes,
            )
            agg = aggregate_runs(runs)
            rounds_mean = stat_mean(agg.get("completion_rounds"))
            rows.append(
                [
                    n,
                    d,
                    label,
                    agg["success_rate"],
                    rounds_mean,
                    rounds_mean / (d * log2n(n)) if rounds_mean is not None else None,
                    stat_mean(agg["max_tx_per_node"]),
                    stat_mean(agg["mean_tx_per_node"]),
                ]
            )

        # Phone-call push gossip (different model, no collisions).
        generators = spawn_generators(seed + n, 2 * repetitions)
        pc_rounds, pc_max, pc_mean = [], [], []
        for rep in range(repetitions):
            network = build_network(spec, rng=generators[2 * rep])
            outcome = run_push_gossip(network, rng=generators[2 * rep + 1])
            pc_rounds.append(outcome.completion_round)
            pc_max.append(outcome.max_per_node)
            pc_mean.append(outcome.mean_per_node)
        rows.append(
            [
                n,
                d,
                "push gossip (no collisions)",
                1.0,
                float(np.mean(pc_rounds)),
                float(np.mean(pc_rounds)) / (d * log2n(n)),
                float(np.mean(pc_max)),
                float(np.mean(pc_mean)),
            ]
        )

    # Energy-advantage note computed from the measured rows.
    alg2_energy = [row[7] for row in rows if row[2] == "algorithm2" and row[7]]
    baseline_energy = [
        row[7]
        for row in rows
        if row[2] in ("uniform_scale_gossip", "sequential_broadcast_gossip") and row[7]
    ]
    notes = [
        "Algorithm 2's rounds / (d log n) stays Θ(1) and its per-node energy "
        "stays O(log n); the composition baselines reach similar completion "
        "times on these dense random networks only by having every node "
        "transmit with Θ(1/log n) probability in every round, which costs "
        "them several times more transmissions per node.",
        "The push-gossip row is the collision-free reference: it shows the "
        "time floor; its per-node energy equals its round count because every "
        "node calls a neighbour every round.",
    ]
    if alg2_energy and baseline_energy:
        notes.insert(
            1,
            "measured energy advantage of Algorithm 2 over the composition "
            f"baselines: {np.mean(baseline_energy) / np.mean(alg2_energy):.1f}x "
            "fewer transmissions per node at comparable or better completion time.",
        )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        columns=columns,
        rows=rows,
        notes=notes,
        parameters={"scale": scale, "sizes": sizes, "repetitions": repetitions, "seed": seed},
    )
