"""Experiment harness: one module per theorem/figure reproduced.

Every experiment module exposes

* ``EXPERIMENT_ID`` — e.g. ``"E1"``;
* ``TITLE`` and ``CLAIM`` — what the paper states;
* ``run(scale="quick", seed=0, processes=None) -> ExperimentResult`` — run
  the workload and return the table the paper's claim is checked against.

``scale`` selects the sweep size: ``"quick"`` keeps wall-clock in seconds
(used by the benchmarks and CI), ``"full"`` runs the sweep reported in
EXPERIMENTS.md.

The registry (:mod:`repro.experiments.registry`) maps experiment ids to
modules; the CLI (``python -m repro``) and the benchmark suite both go
through it.
"""

from repro.experiments.protocols import ProtocolSpec, build_protocol
from repro.experiments.registry import all_experiments, get_experiment, run_experiment
from repro.experiments.results import ExperimentResult
from repro.experiments.runner import Job, aggregate_runs, execute_job, run_jobs

__all__ = [
    "ExperimentResult",
    "ProtocolSpec",
    "build_protocol",
    "Job",
    "execute_job",
    "run_jobs",
    "aggregate_runs",
    "all_experiments",
    "get_experiment",
    "run_experiment",
]
