"""Shared helpers for the experiment modules."""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

from repro.analysis.statistics import SummaryStatistics
from repro.graphs.random_digraph import connectivity_threshold_probability

__all__ = [
    "pick",
    "threshold_p",
    "sparse_p",
    "dense_p",
    "stat_mean",
    "log2n",
]


def pick(scale: str, *, quick, full):
    """Select the quick or full variant of a sweep parameter."""
    if scale == "quick":
        return quick
    if scale == "full":
        return full
    raise ValueError(f"scale must be 'quick' or 'full', got {scale!r}")


def threshold_p(n: int, delta: float = 4.0) -> float:
    """The paper's connectivity-regime probability ``delta * log n / n``."""
    return connectivity_threshold_probability(n, delta)


def sparse_p(n: int, exponent: float = 0.6, delta: float = 4.0) -> float:
    """``max(n^-exponent, threshold)`` — a sparse but connected regime."""
    return max(n ** (-exponent), threshold_p(n, delta))


def dense_p(n: int, exponent: float = 0.35, delta: float = 4.0) -> float:
    """``max(n^-exponent, threshold)`` — the dense regime (Phase 2 skipped)."""
    return max(n ** (-exponent), threshold_p(n, delta))


def stat_mean(value) -> Optional[float]:
    """Extract the mean from a SummaryStatistics (or pass floats through)."""
    if value is None:
        return None
    if isinstance(value, SummaryStatistics):
        return value.mean
    return float(value)


def log2n(n: int) -> float:
    """``log2 n`` clamped to at least 1 (the paper's log factors are >= 1)."""
    return max(1.0, math.log2(max(2, n)))
