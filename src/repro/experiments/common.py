"""Shared helpers for the experiment modules."""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

from repro.analysis.statistics import SummaryStatistics
from repro.graphs.random_digraph import connectivity_threshold_probability

__all__ = [
    "pick",
    "threshold_p",
    "sparse_p",
    "dense_p",
    "stat_mean",
    "log2n",
    "execution_provenance",
]


def execution_provenance() -> Dict[str, object]:
    """Execution-layer facts worth stamping into reports and archives.

    With the sweep service in place, numbers in a report depend on more than
    the experiment parameters: the engine semantics version (which gates the
    result-store keys), the batch axis, the randomness policy and whether a
    result store served cached trials.  This is the one shared place the
    report generator (and any experiment that wants to) reads them from, so
    provenance lands in the output without threading flags through every
    module.
    """
    # Imported here rather than at module top so the experiment modules
    # (which all import this one) do not pull the runner in before their
    # own imports are needed.
    from repro.experiments.runner import _EXECUTION_DEFAULTS
    from repro.radio.kernels import compiled_available, resolve_collision_kernel
    from repro.store import ENGINE_VERSION
    from repro.telemetry import telemetry_provenance

    defaults = _EXECUTION_DEFAULTS
    # Provenance reports what *would* run; resolution is mode-independent
    # here (an illegal edge_sampled x exact combination fails loudly at plan
    # build, not while stamping a report).
    return {
        "engine_version": ENGINE_VERSION,
        "batch": defaults.batch,
        "batch_mode": defaults.batch_mode,
        "state_backend": defaults.state_backend,
        "kernel": defaults.kernel,
        "kernel_resolved": resolve_collision_kernel(defaults.kernel),
        "compiled_kernels": compiled_available(),
        "result_store": (
            str(defaults.store.root) if defaults.store is not None else None
        ),
        # Observability config is stamped for the report reader but never
        # enters store digests (telemetry cannot change any result bit, so
        # keying on it would only invalidate caches — the same reasoning
        # that keeps exact kernels out of cache_context).
        "telemetry": telemetry_provenance(),
    }


def pick(scale: str, *, quick, full):
    """Select the quick or full variant of a sweep parameter."""
    if scale == "quick":
        return quick
    if scale == "full":
        return full
    raise ValueError(f"scale must be 'quick' or 'full', got {scale!r}")


def threshold_p(n: int, delta: float = 4.0) -> float:
    """The paper's connectivity-regime probability ``delta * log n / n``."""
    return connectivity_threshold_probability(n, delta)


def sparse_p(n: int, exponent: float = 0.6, delta: float = 4.0) -> float:
    """``max(n^-exponent, threshold)`` — a sparse but connected regime."""
    return max(n ** (-exponent), threshold_p(n, delta))


def dense_p(n: int, exponent: float = 0.35, delta: float = 4.0) -> float:
    """``max(n^-exponent, threshold)`` — the dense regime (Phase 2 skipped)."""
    return max(n ** (-exponent), threshold_p(n, delta))


def stat_mean(value) -> Optional[float]:
    """Extract the mean from a SummaryStatistics (or pass floats through)."""
    if value is None:
        return None
    if isinstance(value, SummaryStatistics):
        return value.mean
    return float(value)


def log2n(n: int) -> float:
    """``log2 n`` clamped to at least 1 (the paper's log factors are >= 1)."""
    return max(1.0, math.log2(max(2, n)))
