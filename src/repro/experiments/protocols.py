"""Declarative protocol specifications.

The experiment runner describes each run as plain data
(:class:`~repro.graphs.builders.GraphSpec`, :class:`ProtocolSpec`, a seed and
a couple of engine options) so jobs are picklable — which is what allows the
runner to fan repetitions out over worker processes — and so results files
record exactly what was run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict

from repro.baselines.czumaj_rytter import (
    BatchKnownDiameterCR,
    BatchUniformSelectionBroadcast,
    KnownDiameterCR,
    UniformSelectionBroadcast,
)
from repro.baselines.decay import BatchDecayBroadcast, DecayBroadcast
from repro.baselines.elsasser_gasieniec import (
    BatchElsasserGasieniecBroadcast,
    ElsasserGasieniecBroadcast,
)
from repro.baselines.flooding import (
    BatchBernoulliFlood,
    BatchDeterministicFlood,
    BernoulliFlood,
    DeterministicFlood,
)
from repro.baselines.gossip_uniform import BatchUniformScaleGossip, UniformScaleGossip
from repro.baselines.sequential_gossip import (
    BatchSequentialBroadcastGossip,
    SequentialBroadcastGossip,
)
from repro.core.broadcast_general import (
    BatchKnownDiameterBroadcast,
    KnownDiameterBroadcast,
)
from repro.core.broadcast_random import (
    BatchEnergyEfficientBroadcast,
    EnergyEfficientBroadcast,
)
from repro.core.distributions import (
    AlphaDistribution,
    CzumajRytterDistribution,
    FixedProbabilityOblivious,
    UniformScaleDistribution,
)
from repro.core.gossip_random import BatchRandomNetworkGossip, RandomNetworkGossip
from repro.core.oblivious import BatchTimeInvariantBroadcast, TimeInvariantBroadcast
from repro.core.tradeoff import BatchTradeoffBroadcast, TradeoffBroadcast
from repro.radio.batch import BatchProtocol
from repro.radio.protocol import Protocol

__all__ = [
    "ProtocolSpec",
    "build_protocol",
    "build_batch_protocol",
    "supports_batch",
    "PROTOCOL_FACTORIES",
    "BATCH_PROTOCOL_FACTORIES",
]


def _resolve_distribution(dist_spec):
    """Resolve a distribution spec: a float (fixed probability), a
    ``ScaleDistribution`` instance, or a dict
    ``{"kind": "alpha" | "alpha_prime" | "uniform" | "fixed", ...}``."""
    if isinstance(dist_spec, dict):
        kind = dist_spec.get("kind")
        if kind == "alpha":
            return AlphaDistribution(
                dist_spec["n"], dist_spec["diameter"], lam=dist_spec.get("lam")
            )
        if kind == "alpha_prime":
            return CzumajRytterDistribution(dist_spec["n"], dist_spec["diameter"])
        if kind == "uniform":
            return UniformScaleDistribution(dist_spec["n"])
        if kind == "fixed":
            return FixedProbabilityOblivious(dist_spec["q"])
        raise ValueError(f"unknown distribution kind {kind!r}")
    return dist_spec


def _build_time_invariant(**params) -> TimeInvariantBroadcast:
    """Factory for :class:`TimeInvariantBroadcast` taking a distribution spec."""
    dist = _resolve_distribution(params.pop("distribution"))
    return TimeInvariantBroadcast(dist, **params)


def _build_batch_time_invariant(**params) -> BatchTimeInvariantBroadcast:
    """Batched counterpart of :func:`_build_time_invariant` (same spec)."""
    dist = _resolve_distribution(params.pop("distribution"))
    return BatchTimeInvariantBroadcast(dist, **params)


#: Registry: protocol name -> factory taking keyword parameters.
PROTOCOL_FACTORIES: Dict[str, Callable[..., Protocol]] = {
    "algorithm1": EnergyEfficientBroadcast,
    "algorithm2": RandomNetworkGossip,
    "algorithm3": KnownDiameterBroadcast,
    "tradeoff": TradeoffBroadcast,
    "time_invariant": _build_time_invariant,
    "decay": DecayBroadcast,
    "elsasser_gasieniec": ElsasserGasieniecBroadcast,
    "czumaj_rytter_known_d": KnownDiameterCR,
    "uniform_selection": UniformSelectionBroadcast,
    "deterministic_flood": DeterministicFlood,
    "bernoulli_flood": BernoulliFlood,
    "uniform_gossip": UniformScaleGossip,
    "sequential_gossip": SequentialBroadcastGossip,
}


@dataclass(frozen=True)
class ProtocolSpec:
    """A named protocol plus its constructor parameters."""

    name: str
    params: Dict[str, Any] = field(default_factory=dict)

    def describe(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self.params.items()))
        return f"{self.name}({inner})"

    def as_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ProtocolSpec":
        return cls(name=payload["name"], params=dict(payload.get("params", {})))


def build_protocol(spec: ProtocolSpec) -> Protocol:
    """Instantiate the protocol described by ``spec``."""
    try:
        factory = PROTOCOL_FACTORIES[spec.name]
    except KeyError:
        known = ", ".join(sorted(PROTOCOL_FACTORIES))
        raise ValueError(
            f"unknown protocol {spec.name!r}; known protocols: {known}"
        )
    return factory(**spec.params)


#: Protocols with a batched (R-trials-per-round) implementation.  Every name
#: in :data:`PROTOCOL_FACTORIES` has an entry (the tests assert the two key
#: sets are equal), so the batch path of
#: :func:`repro.experiments.runner.repeat_job` is the default pipeline for
#: every protocol; serial execution remains available via ``batch=False``.
BATCH_PROTOCOL_FACTORIES: Dict[str, Callable[..., BatchProtocol]] = {
    "algorithm1": BatchEnergyEfficientBroadcast,
    "algorithm2": BatchRandomNetworkGossip,
    "algorithm3": BatchKnownDiameterBroadcast,
    "tradeoff": BatchTradeoffBroadcast,
    "time_invariant": _build_batch_time_invariant,
    "decay": BatchDecayBroadcast,
    "elsasser_gasieniec": BatchElsasserGasieniecBroadcast,
    "czumaj_rytter_known_d": BatchKnownDiameterCR,
    "uniform_selection": BatchUniformSelectionBroadcast,
    "deterministic_flood": BatchDeterministicFlood,
    "bernoulli_flood": BatchBernoulliFlood,
    "uniform_gossip": BatchUniformScaleGossip,
    "sequential_gossip": BatchSequentialBroadcastGossip,
}


def supports_batch(spec: ProtocolSpec) -> bool:
    """True when ``spec`` has a registered batched implementation."""
    return spec.name in BATCH_PROTOCOL_FACTORIES


def build_batch_protocol(spec: ProtocolSpec) -> BatchProtocol:
    """Instantiate the batched implementation of ``spec``."""
    try:
        factory = BATCH_PROTOCOL_FACTORIES[spec.name]
    except KeyError:
        known = ", ".join(sorted(BATCH_PROTOCOL_FACTORIES))
        raise ValueError(
            f"protocol {spec.name!r} has no batched implementation; "
            f"batchable protocols: {known}"
        )
    return factory(**spec.params)
