"""E14 — Protocol comparison table (the Section 1.1/1.3 related-work matrix).

The introduction positions the paper's algorithms against the related work by
(time, energy) on two workload classes.  This experiment produces the
measured version of that matrix: every broadcast protocol in the repository
runs on (a) a connected random network and (b) a bounded-diameter
path-of-cliques, and reports completion time, total transmissions, and
mean/max transmissions per node; the random phone-call push broadcast is
included as the collision-free reference (a probe cell — its model has no
radio jobs to compile).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro._util.rng import spawn_generators
from repro.baselines.phone_call import run_push_broadcast
from repro.experiments.common import pick, threshold_p
from repro.experiments.protocols import ProtocolSpec
from repro.experiments.results import ExperimentResult
from repro.graphs.builders import GraphSpec, build_network
from repro.graphs.properties import source_eccentricity
from repro.scenarios import (
    ScenarioSpec,
    SweepCell,
    SweepGrid,
    register_probe,
    run_scenario,
)

EXPERIMENT_ID = "E14"
TITLE = "Protocol comparison: time and energy across all implemented protocols"
CLAIM = (
    "Sections 1.1/1.3: Algorithm 1 matches the O(log n) broadcast time of "
    "Elsasser-Gasieniec with at most one transmission per node; Algorithm 3 "
    "matches the optimal Czumaj-Rytter time with a log(n/D) factor fewer "
    "transmissions; Decay and flooding pay more energy or more time."
)

METRICS = (
    "success",
    "completion_round",
    "total_tx",
    "mean_tx_per_node",
    "max_tx_per_node",
)
_PC_METRICS = ("pc_rounds", "pc_total_tx", "pc_max_tx")


def _random_network_protocols(p: float) -> Dict[str, ProtocolSpec]:
    return {
        "algorithm1": ProtocolSpec("algorithm1", {"p": p}),
        "elsasser_gasieniec": ProtocolSpec("elsasser_gasieniec", {"p": p}),
        "decay": ProtocolSpec("decay", {}),
        "bernoulli_flood(1/log n)": ProtocolSpec("bernoulli_flood", {"q": 0.1}),
    }


def _general_network_protocols(diameter: int) -> Dict[str, ProtocolSpec]:
    return {
        "algorithm3": ProtocolSpec("algorithm3", {"diameter": diameter}),
        "czumaj_rytter_known_d": ProtocolSpec(
            "czumaj_rytter_known_d", {"diameter": diameter}
        ),
        "uniform_selection": ProtocolSpec("uniform_selection", {"diameter": diameter}),
        "decay": ProtocolSpec("decay", {}),
    }


@register_probe("e14.phone_call_push_broadcast")
def _phone_call_broadcast_probe(params, seed, repetitions) -> Iterator[dict]:
    """Collision-free push-broadcast reference on fresh G(n, p) samples."""
    spec = GraphSpec("gnp", {"n": params["n"], "p": params["p"]})
    generators = spawn_generators(seed + 99, repetitions)
    for rep in range(repetitions):
        graph_rng, run_rng = spawn_generators(
            int(generators[rep].integers(0, 2**62)), 2
        )
        network = build_network(spec, rng=graph_rng)
        outcome = run_push_broadcast(network, rng=run_rng)
        yield {
            "pc_rounds": float(outcome.completion_round),
            "pc_total_tx": float(outcome.total_transmissions),
            "pc_max_tx": float(outcome.max_per_node),
        }


def scenario(scale: str = "quick", seed: int = 0) -> ScenarioSpec:
    """The E14 matrix as a grid: two workloads × their protocol families."""
    repetitions = pick(scale, quick=3, full=10)
    n_random = pick(scale, quick=512, full=2048)
    cliques = pick(scale, quick=(12, 12), full=(16, 16))

    cells: List[SweepCell] = []

    # ---------------- Random network workload ---------------- #
    p = threshold_p(n_random)
    gnp_spec = GraphSpec("gnp", {"n": n_random, "p": p})
    workload_label = f"gnp(n={n_random}, p=4log n/n)"
    for name, proto in _random_network_protocols(p).items():
        cells.append(
            SweepCell(
                coords={"workload": workload_label, "protocol": name},
                graph=gnp_spec,
                protocol=proto,
                repetitions=repetitions,
                job_options={"run_to_quiescence": True},
            )
        )
    cells.append(
        SweepCell(
            coords={
                "workload": workload_label,
                "protocol": "random phone call (no collisions)",
                "n": n_random,
            },
            kind="probe",
            probe="e14.phone_call_push_broadcast",
            params={"n": n_random, "p": p},
            repetitions=repetitions,
            metrics=_PC_METRICS,
        )
    )

    # ---------------- Bounded-diameter workload ---------------- #
    clique_spec = GraphSpec(
        "path_of_cliques", {"num_cliques": cliques[0], "clique_size": cliques[1]}
    )
    network = build_network(clique_spec, rng=seed)
    diameter = source_eccentricity(network, 0)
    workload_label = f"path_of_cliques({cliques[0]}x{cliques[1]}), D={diameter}"
    for name, proto in _general_network_protocols(diameter).items():
        cells.append(
            SweepCell(
                coords={"workload": workload_label, "protocol": name},
                graph=clique_spec,
                protocol=proto,
                repetitions=repetitions,
                job_options={"run_to_quiescence": True},
            )
        )

    return ScenarioSpec(
        scenario_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        grid=SweepGrid(cells=tuple(cells)),
        metrics=METRICS,
        seed=seed,
        parameters={
            "scale": scale,
            "repetitions": repetitions,
            "n_random": n_random,
            "cliques": list(cliques),
            "seed": seed,
        },
    )


def run(
    scale: str = "quick", seed: int = 0, processes: Optional[int] = None
) -> ExperimentResult:
    """Produce the protocol-comparison matrix."""
    spec = scenario(scale, seed)
    cells = run_scenario(spec, processes=processes)

    columns = [
        "workload",
        "protocol",
        "success_rate",
        "rounds (mean)",
        "total tx (mean)",
        "mean tx/node",
        "max tx/node (worst run)",
    ]
    rows: List[List[object]] = []
    for cell in cells:
        workload_label = cell.coords["workload"]
        name = cell.coords["protocol"]
        if cell.cell.kind == "probe":
            n_random = cell.coords["n"]
            total_mean = cell.mean("pc_total_tx")
            rows.append(
                [
                    workload_label,
                    name,
                    1.0,
                    cell.mean("pc_rounds"),
                    total_mean,
                    total_mean / n_random,
                    int(cell.maximum("pc_max_tx")),
                ]
            )
            continue
        rows.append(
            [
                workload_label,
                name,
                cell.success_rate,
                cell.mean("completion_round"),
                cell.mean("total_tx"),
                cell.mean("mean_tx_per_node"),
                int(cell.maximum("max_tx_per_node")),
            ]
        )

    notes = [
        "On the random network, Algorithm 1 should match the broadcast time of "
        "Elsasser-Gasieniec while keeping max tx/node at 1 (EG pays up to D-1).",
        "On the bounded-diameter network, Algorithm 3 and Czumaj-Rytter have "
        "comparable completion times while Algorithm 3 spends a factor "
        "~log(n/D) fewer transmissions per node; Decay pays the (D+log n)log n "
        "time and keeps transmitting until completion.",
        "The random phone-call row is a different communication model (no "
        "collisions, addressed unicast) and is included only as an energy "
        "reference point (cf. Elsasser 2006).",
    ]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        columns=columns,
        rows=rows,
        notes=notes,
        parameters=dict(spec.parameters),
    )
