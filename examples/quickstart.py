#!/usr/bin/env python
"""Quickstart: broadcast on a random AdHoc network with Algorithm 1.

Builds a directed G(n, p) radio network in the paper's connectivity regime,
runs the paper's energy-efficient broadcast (Algorithm 1) and the
Elsässer–Gasieniec baseline on the *same* network, and prints the headline
quantities of Theorem 2.1: broadcast time O(log n), at most one transmission
per node, and O(log n / p) total transmissions.

Run:  python examples/quickstart.py [n] [seed]
"""

from __future__ import annotations

import math
import sys

from repro.analysis.tables import format_table
from repro.baselines import ElsasserGasieniecBroadcast
from repro.core import EnergyEfficientBroadcast
from repro.graphs import connectivity_threshold_probability, random_digraph
from repro.radio import run_protocol


def main(n: int = 2048, seed: int = 1) -> None:
    p = connectivity_threshold_probability(n, delta=4.0)
    print(f"Sampling directed G(n={n}, p={p:.4f})  (expected degree d = {n * p:.1f})")
    network = random_digraph(n, p, rng=seed)
    print(f"  -> {network.num_edges} directed edges\n")

    protocols = {
        "Algorithm 1 (this paper)": EnergyEfficientBroadcast(p),
        "Elsasser-Gasieniec (SPAA'05)": ElsasserGasieniecBroadcast(p),
    }

    rows = []
    for name, protocol in protocols.items():
        result = run_protocol(
            network, protocol, rng=seed + 1, run_to_quiescence=True
        )
        rows.append(
            [
                name,
                "yes" if result.completed else "NO",
                result.completion_round,
                result.energy.max_per_node,
                result.energy.total_transmissions,
            ]
        )

    print(
        format_table(
            ["protocol", "completed", "rounds", "max tx/node", "total tx"],
            rows,
            title="Broadcast on the same sampled network",
        )
    )
    print()
    log_n = math.log2(n)
    print(f"Reference quantities:  log2 n = {log_n:.1f},   log2 n / p = {log_n / p:.0f}")
    print(
        "Theorem 2.1 shape: Algorithm 1 finishes in O(log n) rounds, never lets a\n"
        "node transmit twice, and keeps total transmissions around log n / p."
    )


if __name__ == "__main__":
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 2048
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 1
    main(n, seed)
