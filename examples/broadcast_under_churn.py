#!/usr/bin/env python
"""Broadcast through faulty worlds: loss, churn and jamming.

The paper's guarantees (Theorems 1.1–1.3) assume a perfectly reliable
synchronous radio network.  This example wraps the batched engine in the
:mod:`repro.radio.environment` layer and re-runs the paper's Algorithm 1
next to a redundancy-heavy Bernoulli flood while the world misbehaves:

* ``loss``  — every delivery is destroyed i.i.d. with probability 20%;
* ``churn`` — a quarter of the nodes crash early on and recover later
  (their radios go dark but their clocks keep ticking);
* ``jam``   — an adversary silences the two loudest channels each round.

For each world we report the success rate across trials, the mean
completion round, the energy bill, and the two robustness metrics the
environment layer tracks: ``recovery rounds`` (rounds from the last fault
to completion) and ``work wasted`` (charged transmissions destroyed in
flight plus deliveries the environment erased).

Run:  python examples/broadcast_under_churn.py [n] [trials] [seed]
"""

from __future__ import annotations

import sys

from repro.analysis.tables import format_table
from repro.experiments.common import threshold_p
from repro.experiments.protocols import BATCH_PROTOCOL_FACTORIES
from repro.graphs.random_digraph import random_digraph
from repro.radio import parse_environment_option, run_protocol_batch

WORLDS = [
    ("reliable", None),
    ("loss 20%", "loss=0.2"),
    ("churn 25%", "churn=0.25@6:30"),
    ("jam k=2", "jam=2"),
]


def main(n: int = 128, trials: int = 8, seed: int = 7) -> None:
    network = random_digraph(n, threshold_p(n), rng=seed)
    protocols = {
        "algorithm1": lambda: BATCH_PROTOCOL_FACTORIES["algorithm1"](
            p=threshold_p(n)
        ),
        "bernoulli_flood": lambda: BATCH_PROTOCOL_FACTORIES["bernoulli_flood"](
            q=0.1
        ),
    }

    print(
        f"Broadcast on G({n}, p) at the connectivity threshold, "
        f"{trials} trials per world (--env syntax shown per row)\n"
    )

    rows = []
    for label, make_protocol in protocols.items():
        for world, option in WORLDS:
            traces = run_protocol_batch(
                network,
                make_protocol(),
                trials=trials,
                rng=seed + 1,
                max_rounds=800,
                environment=parse_environment_option(option),
            )
            done = [t for t in traces if t.completed]
            success = len(done) / len(traces)
            rounds = (
                sum(t.completion_round for t in done) / len(done)
                if done
                else float("nan")
            )
            energy = sum(
                t.energy.total_transmissions for t in traces
            ) / len(traces)
            recovery = wasted = 0.0
            reports = [t.metadata.get("environment") for t in traces]
            if any(reports):
                wasted = sum(
                    r["lost_transmissions"] + r["lost_deliveries"]
                    for r in reports
                ) / len(traces)
                spans = [
                    t.completion_round - r["last_fault_round"]
                    for t, r in zip(traces, reports)
                    if t.completed and r["last_fault_round"] > 0
                ]
                recovery = (
                    sum(max(0, s) for s in spans) / len(spans) if spans else 0.0
                )
            rows.append(
                [
                    label,
                    world,
                    f"{success * 100:.0f}%",
                    f"{rounds:.1f}" if done else "—",
                    f"{energy:.0f}",
                    f"{recovery:.1f}",
                    f"{wasted:.0f}",
                ]
            )

    print(
        format_table(
            [
                "protocol",
                "world",
                "success",
                "rounds",
                "total tx",
                "recovery rounds",
                "work wasted",
            ],
            rows,
            title="Robustness vs energy under faulty worlds",
        )
    )
    print(
        "\nThe energy-optimal schedule degrades first; flooding survives by "
        "burning transmissions the environment then destroys."
    )


if __name__ == "__main__":
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 128
    trials = int(sys.argv[2]) if len(sys.argv) > 2 else 8
    seed = int(sys.argv[3]) if len(sys.argv) > 3 else 7
    main(n, trials, seed)
