#!/usr/bin/env python
"""Sensor-field broadcast: the paper's motivating AdHoc scenario.

A field of battery-powered sensors is modelled as a random geometric radio
network (the model the paper's Section 5 names as the realistic one), with a
variant in which sensors have *different* listening ranges — producing the
asymmetric links that rule out acknowledgement-based protocols.

A sink node broadcasts a configuration update.  We compare:

* **Algorithm 3** (known diameter — e.g. learned from the deployment plan),
* the **Czumaj–Rytter** known-diameter baseline, and
* the **Decay** protocol (knows nothing, pays with energy),

on both completion time and energy (transmissions), the quantity that
determines sensor battery life.

Run:  python examples/sensor_field_broadcast.py [n] [seed]
"""

from __future__ import annotations

import sys

from repro.analysis.tables import format_table
from repro.baselines import DecayBroadcast, KnownDiameterCR
from repro.core import KnownDiameterBroadcast
from repro.graphs import heterogeneous_geometric_digraph
from repro.graphs.geometric import connectivity_radius
from repro.graphs.properties import diameter_estimate, is_strongly_connected
from repro.radio import run_protocol


def main(n: int = 512, seed: int = 7) -> None:
    base_radius = 2.0 * connectivity_radius(n)
    print(
        f"Deploying {n} sensors uniformly in the unit square with listening radii in "
        f"[{0.7 * base_radius:.3f}, {1.3 * base_radius:.3f}] (asymmetric links allowed)."
    )
    attempt = 0
    while True:
        network = heterogeneous_geometric_digraph(
            n, 0.7 * base_radius, 1.3 * base_radius, rng=seed + attempt
        )
        if is_strongly_connected(network):
            break
        attempt += 1
        if attempt > 20:
            raise RuntimeError("could not sample a connected sensor field; increase the radius")
    diameter = diameter_estimate(network, rng=seed)
    degrees = network.in_degrees()
    print(
        f"  -> {network.num_edges} directed links, diameter ~ {diameter}, "
        f"mean in-degree {degrees.mean():.1f}\n"
    )

    protocols = {
        "Algorithm 3 (knows D)": KnownDiameterBroadcast(diameter),
        "Czumaj-Rytter (knows D)": KnownDiameterCR(diameter),
        "Decay (knows nothing)": DecayBroadcast(),
    }

    rows = []
    for name, protocol in protocols.items():
        result = run_protocol(network, protocol, rng=seed + 100, run_to_quiescence=True)
        rows.append(
            [
                name,
                "yes" if result.completed else "NO",
                result.completion_round,
                round(result.energy.mean_per_node, 2),
                result.energy.max_per_node,
                result.energy.total_transmissions,
            ]
        )

    print(
        format_table(
            [
                "protocol",
                "completed",
                "rounds",
                "mean tx/sensor",
                "max tx/sensor",
                "total tx",
            ],
            rows,
            title="Configuration-update broadcast across the sensor field",
        )
    )
    print()
    print(
        "Energy per transmission is what drains sensor batteries: Algorithm 3 buys the\n"
        "same completion time as Czumaj-Rytter for a fraction of the transmissions, and\n"
        "both windowed protocols stop spending energy once their windows expire, unlike\n"
        "Decay which keeps contending until the broadcast happens to finish."
    )


if __name__ == "__main__":
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 512
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 7
    main(n, seed)
