#!/usr/bin/env python
"""Dynamic gossiping among mobile devices (Algorithm 2 + mobility).

The paper notes that Algorithm 2 "can be transformed into a dynamic gossiping
algorithm" by time-stamping rumours — nodes simply keep running the same
per-round rule while the topology underneath them changes.  This example puts
that to the test: devices drift across the unit square (waypoint mobility),
the radio network is rebuilt every epoch, and the gossip protocol keeps its
rumour state across epochs.

We report how many epochs it takes until every device knows every rumour and
how many transmissions each device spent — the per-node energy stays
O(log n)-ish per epoch because the transmission rule is an independent
Bernoulli(1/d) per round regardless of mobility.

Run:  python examples/dynamic_gossip.py [n] [seed]
"""

from __future__ import annotations

import math
import sys

import numpy as np

from repro.analysis.tables import format_table
from repro.core import RandomNetworkGossip
from repro.radio import SimulationEngine
from repro.radio.dynamics import WaypointDriftModel


def main(n: int = 128, seed: int = 11, epochs: int = 12, rounds_per_epoch: int = 60) -> None:
    drift = WaypointDriftModel(step_std=0.03, radius=2.2 * math.sqrt(math.log(n) / (math.pi * n)))
    rng = np.random.default_rng(seed)

    # The gossip protocol needs an effective density; use the expected degree
    # of the geometric model (pi r^2 n neighbours -> p_eff = pi r^2).
    p_eff = min(1.0, math.pi * drift.radius**2)
    protocol = RandomNetworkGossip(p_eff, rounds_constant=64.0)

    print(
        f"{n} mobile devices, listening radius {drift.radius:.3f}, "
        f"effective density p_eff={p_eff:.3f}\n"
    )

    engine = SimulationEngine()
    rows = []
    total_tx = np.zeros(n, dtype=np.int64)
    bound_once = False
    completed_epoch = None

    for epoch, network in enumerate(drift.snapshots(n, epochs, rng=rng)):
        if not bound_once:
            protocol.bind(network, rng)
            bound_once = True
        else:
            # Keep rumour knowledge, swap the topology under the protocol.
            protocol._network = network  # deliberate: dynamic-topology variant
        for round_index in range(rounds_per_epoch):
            mask = protocol.transmit_mask(round_index)
            outcome = engine.collision_model.resolve(network, mask, rng)
            protocol.observe(round_index, mask, outcome)
            total_tx += mask
        coverage = protocol.knowledge.mean()
        min_known = int(protocol.rumours_known().min())
        rows.append(
            [
                epoch,
                network.num_edges,
                f"{coverage * 100:.1f}%",
                min_known,
                int(total_tx.max()),
            ]
        )
        if protocol.is_complete() and completed_epoch is None:
            completed_epoch = epoch
            break

    print(
        format_table(
            ["epoch", "links", "rumour coverage", "min rumours/node", "max tx/node so far"],
            rows,
            title="Gossip progress while devices move",
        )
    )
    print()
    if completed_epoch is not None:
        print(
            f"All {n} rumours reached all devices during epoch {completed_epoch}; "
            f"max transmissions per device: {int(total_tx.max())} "
            f"(log2 n = {math.log2(n):.1f})."
        )
    else:
        print(
            "Gossip did not complete within the epoch budget — increase epochs or the radius."
        )


if __name__ == "__main__":
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 128
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 11
    main(n, seed)
