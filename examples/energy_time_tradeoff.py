#!/usr/bin/env python
"""Energy/time tradeoff study (Theorem 4.2) on a backbone-of-clusters network.

The network is a "path of cliques": dense clusters (e.g. rooms full of
devices) chained along a backbone — small diameter relative to n, heavy local
contention.  Sweeping the tradeoff parameter λ between log(n/D) and log n
traces the frontier the paper proves: time grows roughly linearly in λ while
per-node energy falls like 1/λ.

Run:  python examples/energy_time_tradeoff.py [num_clusters] [cluster_size] [seed]
"""

from __future__ import annotations

import sys

import numpy as np

from repro.analysis.tables import format_table
from repro.core import TradeoffBroadcast
from repro.core.tradeoff import admissible_lambda_range
from repro.experiments.figures import ascii_chart
from repro.experiments.results import Series
from repro.graphs import path_of_cliques
from repro.graphs.properties import source_eccentricity
from repro.radio import run_protocol


def main(num_clusters: int = 16, cluster_size: int = 12, seed: int = 3, repetitions: int = 3) -> None:
    network = path_of_cliques(num_clusters, cluster_size)
    n = network.n
    diameter = source_eccentricity(network, 0)
    lam_low, lam_high = admissible_lambda_range(n, diameter)
    lambdas = np.linspace(lam_low, lam_high, 5)

    print(
        f"Backbone of {num_clusters} clusters x {cluster_size} devices: n={n}, D={diameter}, "
        f"admissible lambda in [{lam_low:.2f}, {lam_high:.2f}]\n"
    )

    rows = []
    energy_series = Series(
        name="mean tx/node vs lambda", x=[], y=[], x_label="lambda", y_label="tx/node"
    )
    for lam in lambdas:
        rounds, energy = [], []
        for rep in range(repetitions):
            result = run_protocol(
                network,
                TradeoffBroadcast(diameter, lam=float(lam)),
                rng=seed * 1000 + rep,
                run_to_quiescence=True,
            )
            if result.completed:
                rounds.append(result.completion_round)
            energy.append(result.energy.mean_per_node)
        rows.append(
            [
                round(float(lam), 2),
                round(float(np.mean(rounds)), 1) if rounds else None,
                round(float(np.mean(energy)), 2),
            ]
        )
        energy_series.x.append(float(lam))
        energy_series.y.append(float(np.mean(energy)))

    print(
        format_table(
            ["lambda", "rounds (mean)", "mean tx/node"],
            rows,
            title="Theorem 4.2 tradeoff sweep",
        )
    )
    print()
    print(ascii_chart(energy_series))
    print()
    print(
        "Reading the frontier: pick lambda = log(n/D) when latency matters most,\n"
        "lambda = log n when battery life matters most; Theorem 4.2 guarantees every\n"
        "intermediate point."
    )


if __name__ == "__main__":
    num_clusters = int(sys.argv[1]) if len(sys.argv) > 1 else 16
    cluster_size = int(sys.argv[2]) if len(sys.argv) > 2 else 12
    seed = int(sys.argv[3]) if len(sys.argv) > 3 else 3
    main(num_clusters, cluster_size, seed)
