"""Benchmark E16: Algorithm 2 vs composition-style gossip baselines.

Regenerates the E16 table of EXPERIMENTS.md (run with ``-s`` to see it).
"""


def test_bench_e16_gossip_baselines(benchmark, experiment_runner):
    result = experiment_runner(benchmark, "E16")
    assert result.rows
