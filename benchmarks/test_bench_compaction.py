"""Continuous batching vs static shards on tail-heavy and uniform workloads.

The cell the feature was built for is sub-threshold Decay: at
``p = 0.25 * connectivity_threshold_probability(n, delta=4)`` a few percent
of sampled digraphs are disconnected, and a disconnected trial can never
complete — under the pre-continuous engine (``retire_dead=False``, static
shards) each such straggler burns the full round cap *and* keeps its whole
shard's rows alive alongside it.  ``run_continuous`` retires a dead trial
the phase its informed set stops growing (Decay's frontier-closure rule),
compacts the stragglers' rows out of the stacked CSR, and refills from the
pending queue, so the cap is never paid at all.

The baseline here is deliberately the engine as it behaved before this
change — ``BatchEngine(retire_dead=False).run()`` over fixed waves — because
retirement + compaction + refill ship as one bundle and the gate measures
the bundle.  The uniform cell (connected graphs, tight completion spread)
checks the other side: when there is no tail to cut, continuous batching
must not cost more than a few percent over a single static batch.

Both runs use exact per-trial RNG streams, so completed trials finish in
bit-identical rounds under either engine; only dead trials differ (the
baseline reports the round cap, continuous reports the retirement round).
"""

from __future__ import annotations

import os
import time

import pytest

from repro.baselines.decay import BatchDecayBroadcast
from repro.core.broadcast_random import BatchEnergyEfficientBroadcast
from repro.graphs.random_digraph import (
    connectivity_threshold_probability,
    random_digraph,
)
from repro.radio.batch import BatchEngine, PendingTrial

DECAY_N = 8192
DECAY_TRIALS = 96
DECAY_SHARD = 32
DECAY_MAX_ROUNDS = 4000

UNIFORM_N = 4096
UNIFORM_TRIALS = 32


@pytest.fixture(scope="module")
def subthreshold_workload():
    """96 G(n, p) topologies well below the connectivity threshold.

    Expected out-degree lands near ``ln n`` — connectivity's knife edge — so
    a small fraction of samples (~2-3% at this n) leave part of the graph
    unreachable from the source and the completion-time spread is heavy.
    """
    p = 0.25 * connectivity_threshold_probability(DECAY_N, delta=4.0)
    networks = [random_digraph(DECAY_N, p, rng=1000 + t) for t in range(DECAY_TRIALS)]
    return networks


@pytest.fixture(scope="module")
def uniform_workload():
    """32 G(n, p) topologies at the connected E1 benchmark density."""
    p = connectivity_threshold_probability(UNIFORM_N, delta=4.0)
    networks = [
        random_digraph(UNIFORM_N, p, rng=1000 + t) for t in range(UNIFORM_TRIALS)
    ]
    return networks, p


def _sharded_seconds(networks):
    """Pre-continuous behavior: static waves, no dead-trial retirement."""
    engine = BatchEngine(retire_dead=False)
    start = time.perf_counter()
    results = []
    for base in range(0, DECAY_TRIALS, DECAY_SHARD):
        nets = networks[base : base + DECAY_SHARD]
        results.extend(
            engine.run(
                nets,
                BatchDecayBroadcast(),
                rngs=[2000 + base + i for i in range(len(nets))],
                max_rounds=DECAY_MAX_ROUNDS,
            )
        )
    return time.perf_counter() - start, results


def test_bench_continuous_subthreshold_decay(benchmark, subthreshold_workload):
    """Tail-heavy Decay cell: continuous batching vs static shards."""
    networks = subthreshold_workload

    def continuous():
        pend = [
            PendingTrial(net, rng=2000 + t) for t, net in enumerate(networks)
        ]
        return BatchEngine().run_continuous(
            pend,
            BatchDecayBroadcast,
            capacity=DECAY_SHARD,
            max_rounds=DECAY_MAX_ROUNDS,
        )

    cont_results = benchmark.pedantic(continuous, rounds=2, iterations=1)
    sharded_seconds, base_results = _sharded_seconds(networks)
    continuous_seconds = benchmark.stats.stats.min

    assert len(cont_results) == DECAY_TRIALS
    # Same trials complete under both engines, in bit-identical rounds; the
    # stragglers (incomplete) retire early instead of burning the cap.
    assert [r.completed for r in cont_results] == [r.completed for r in base_results]
    completed_rounds = [
        (c.completion_round, b.completion_round)
        for c, b in zip(cont_results, base_results)
        if c.completed
    ]
    assert all(c == b for c, b in completed_rounds)
    stragglers = [t for t, r in enumerate(cont_results) if not r.completed]
    assert stragglers, "workload must contain disconnected stragglers"
    assert all(
        cont_results[t].rounds_executed < DECAY_MAX_ROUNDS for t in stragglers
    )

    speedup = sharded_seconds / continuous_seconds
    benchmark.extra_info.update(
        {
            "n": DECAY_N,
            "trials": DECAY_TRIALS,
            "shard": DECAY_SHARD,
            "max_rounds": DECAY_MAX_ROUNDS,
            "stragglers": len(stragglers),
            "sharded_seconds": sharded_seconds,
            "continuous_seconds": continuous_seconds,
            "sharded_trials_per_second": DECAY_TRIALS / sharded_seconds,
            "continuous_trials_per_second": DECAY_TRIALS / continuous_seconds,
            "compaction_speedup": speedup,
        }
    )
    print(
        f"\nn={DECAY_N} R={DECAY_TRIALS} sub-threshold decay: "
        f"sharded {sharded_seconds:.3f}s "
        f"({DECAY_TRIALS / sharded_seconds:.1f} trials/s), "
        f"continuous {continuous_seconds:.3f}s "
        f"({DECAY_TRIALS / continuous_seconds:.1f} trials/s), "
        f"speedup {speedup:.2f}x ({len(stragglers)} stragglers retired)"
    )
    # Acceptance gate: continuous >= 1.5x sharded trials/s on the tail-heavy
    # cell.  Timing gate is local-only (shared CI runners are too noisy);
    # CI still records the measured ratio in the JSON.
    if not os.environ.get("CI"):
        assert speedup >= 1.5


def test_bench_continuous_uniform_no_regression(benchmark, uniform_workload):
    """Uniform collision cell: continuous batching must not tax the no-tail case."""
    networks, p = uniform_workload

    def continuous():
        pend = [
            PendingTrial(net, rng=2000 + t) for t, net in enumerate(networks)
        ]
        return BatchEngine().run_continuous(
            pend,
            lambda: BatchEnergyEfficientBroadcast(p),
            capacity=UNIFORM_TRIALS,
        )

    cont_results = benchmark.pedantic(continuous, rounds=3, iterations=1)
    engine = BatchEngine()
    start = time.perf_counter()
    batch_results = engine.run(
        networks,
        BatchEnergyEfficientBroadcast(p),
        rngs=[2000 + t for t in range(UNIFORM_TRIALS)],
    )
    batch_seconds = time.perf_counter() - start
    continuous_seconds = benchmark.stats.stats.min

    assert len(cont_results) == UNIFORM_TRIALS
    assert all(r.completed for r in cont_results)
    assert [r.completion_round for r in cont_results] == [
        r.completion_round for r in batch_results
    ]

    ratio = batch_seconds / continuous_seconds
    benchmark.extra_info.update(
        {
            "n": UNIFORM_N,
            "trials": UNIFORM_TRIALS,
            "batch_seconds": batch_seconds,
            "continuous_seconds": continuous_seconds,
            "batch_trials_per_second": UNIFORM_TRIALS / batch_seconds,
            "continuous_trials_per_second": UNIFORM_TRIALS / continuous_seconds,
            "compaction_uniform_ratio": ratio,
        }
    )
    print(
        f"\nn={UNIFORM_N} R={UNIFORM_TRIALS} uniform: "
        f"static batch {batch_seconds:.3f}s, continuous {continuous_seconds:.3f}s, "
        f"ratio {ratio:.2f}x"
    )
    # No-regression gate: >= 0.95x static-batch throughput when every trial
    # completes and there is no tail to cut.  Local-only, as above.
    if not os.environ.get("CI"):
        assert ratio >= 0.95
