"""Benchmark E13: Extension: random geometric (sensor-field) networks.

Regenerates the E13 table of EXPERIMENTS.md (run with ``-s`` to see it).
"""


def test_bench_e13_geometric(benchmark, experiment_runner):
    result = experiment_runner(benchmark, "E13")
    assert result.rows
