"""Benchmark E14: Related-work comparison matrix across all protocols.

Regenerates the E14 table of EXPERIMENTS.md (run with ``-s`` to see it).
"""


def test_bench_e14_protocol_comparison(benchmark, experiment_runner):
    result = experiment_runner(benchmark, "E14")
    assert result.rows
