"""Environment-layer overhead: null-env wrapper vs bare batch engine.

The faulty-world layer (``repro.radio.environment``) promises to be free
when the world is reliable: a null environment short-circuits every hook
(``is_null`` skips them entirely) and must not disturb the engine's fast
path.  This cell measures a full Decay repetition sweep — the same
shape as the batch-vs-serial comparison — bare vs wrapped in a
null-by-construction environment (``iid_loss`` at rate 0), and records
``environment_overhead_ratio`` (wrapped seconds / bare seconds) into
``BENCH_engine.json``.  A non-null cell (20% i.i.d. delivery loss) is
timed alongside for context: it pays real per-round uniform draws and
delivery surgery, so its ratio is informative, not gated.
"""

import os
import time

import pytest

from repro.baselines.decay import BatchDecayBroadcast
from repro.graphs.random_digraph import (
    connectivity_threshold_probability,
    random_digraph,
)
from repro.radio.batch import BatchEngine
from repro.radio.environment import build_batch_environment

N = 512
TRIALS = 64


@pytest.fixture(scope="module")
def workload():
    p = connectivity_threshold_probability(N, delta=4.0)
    networks = [random_digraph(N, p, rng=7000 + t) for t in range(TRIALS)]
    return networks, p


def _run(networks, environment) -> float:
    engine = BatchEngine(environment=environment)
    start = time.perf_counter()
    results = engine.run(networks, BatchDecayBroadcast(), rng=13)
    seconds = time.perf_counter() - start
    assert all(r.completed for r in results)
    return seconds


def test_bench_environment_overhead(benchmark, workload):
    """Null-environment wrapper must stay within 5% of the bare engine."""
    networks, _ = workload
    null_env = {"name": "iid_loss", "params": {"tx_loss": 0.0, "rx_loss": 0.0}}
    assert build_batch_environment(null_env).is_null

    def wrapped():
        return _run(networks, null_env)

    benchmark.pedantic(wrapped, rounds=3, iterations=1)
    # Each run is ~0.1s, so single timings jitter >10% and the jitter is
    # time-correlated (frequency scaling, neighbours on a shared box).  The
    # gate therefore takes the best of five back-to-back (wrapped, bare)
    # pair ratios — the cleanest pair is the honest estimate of the
    # wrapper's cost — while the recorded seconds are each arm's floor.
    pair_ratios = []
    wrapped_times = []
    bare_times = []
    for _ in range(5):
        wrapped_times.append(_run(networks, null_env))
        bare_times.append(_run(networks, None))
        pair_ratios.append(wrapped_times[-1] / bare_times[-1])
    wrapped_seconds = min(wrapped_times)
    bare_seconds = min(bare_times)
    lossy_seconds = _run(
        networks, {"name": "iid_loss", "params": {"rx_loss": 0.2}}
    )
    overhead = min(pair_ratios)
    benchmark.extra_info.update(
        {
            "n": N,
            "trials": TRIALS,
            "bare_seconds": bare_seconds,
            "null_env_seconds": wrapped_seconds,
            "lossy_env_seconds": lossy_seconds,
            "environment_overhead_ratio": overhead,
            "lossy_env_ratio": lossy_seconds / bare_seconds,
        }
    )
    print(
        f"\ndecay n={N} R={TRIALS}: bare {bare_seconds:.3f}s, "
        f"null env {wrapped_seconds:.3f}s "
        f"(best pair {overhead:.3f}x), "
        f"rx_loss=0.2 {lossy_seconds:.3f}s "
        f"({lossy_seconds / bare_seconds:.2f}x)"
    )
    # Timing gate is local-only (shared CI runners are too noisy); CI still
    # records the measured ratio in the JSON.
    if not os.environ.get("CI"):
        assert overhead <= 1.05
