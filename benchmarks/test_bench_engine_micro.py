"""Micro-benchmarks of the simulation substrate itself.

These measure the per-round and per-run cost of the vectorised engine so
performance regressions in the hot path (CSR gather + bincount collision
resolution, graph sampling) are visible independently of the experiment
sweeps.
"""

import numpy as np
import pytest

from repro.core.broadcast_random import EnergyEfficientBroadcast
from repro.core.gossip_random import RandomNetworkGossip
from repro.graphs.random_digraph import connectivity_threshold_probability, random_digraph
from repro.radio.collision import StandardCollisionModel
from repro.radio.engine import run_protocol


@pytest.fixture(scope="module")
def large_gnp():
    n = 4096
    p = connectivity_threshold_probability(n, delta=4.0)
    return random_digraph(n, p, rng=3), p


def test_bench_graph_sampling(benchmark):
    """Sampling a ~170k-edge directed G(n, p)."""
    n = 4096
    p = connectivity_threshold_probability(n, delta=4.0)
    net = benchmark(lambda: random_digraph(n, p, rng=11))
    assert net.n == n


def test_bench_collision_resolution_round(benchmark, large_gnp):
    """One collision-resolution round with ~10% of nodes transmitting."""
    network, _ = large_gnp
    rng = np.random.default_rng(5)
    mask = rng.random(network.n) < 0.1
    model = StandardCollisionModel()
    outcome = benchmark(lambda: model.resolve(network, mask))
    assert outcome.hear_counts.shape == (network.n,)


def test_bench_algorithm1_full_run(benchmark, large_gnp):
    """A complete Algorithm-1 broadcast on n=4096 (the E1 unit of work)."""
    network, p = large_gnp
    result = benchmark(
        lambda: run_protocol(
            network, EnergyEfficientBroadcast(p), rng=9, run_to_quiescence=True
        )
    )
    assert result.energy.max_per_node <= 1


def test_bench_gossip_full_run(benchmark):
    """A complete Algorithm-2 gossip on n=128 (the E4 unit of work)."""
    n = 128
    p = connectivity_threshold_probability(n, delta=4.0)
    network = random_digraph(n, p, rng=2)
    result = benchmark(lambda: run_protocol(network, RandomNetworkGossip(p), rng=4))
    assert result.completed
