"""Cold vs warm sweep through the content-addressed result store.

The unit of work is one E1 sweep cell (a full Algorithm-1 broadcast to
quiescence on ``G(n, p)`` at ``n = 4096``, R = 8 repetitions, exact-mode
randomness — the configuration the resumable sweep service guarantees
bit-identity for).  The cold pass computes and checkpoints every trial; the
warm pass must serve all of them from the store without executing a single
engine round, which is asserted by poisoning the shard executor.

The headline numbers (``cold_seconds`` / ``warm_seconds`` /
``cache_speedup``) land in ``BENCH_engine.json`` via
``benchmarks/run_benchmarks.sh`` so the cache's value is tracked across PRs.
"""

import os
import time

import repro.experiments.runner as runner_module
from repro.experiments.protocols import ProtocolSpec
from repro.experiments.runner import repeat_job
from repro.graphs.builders import GraphSpec
from repro.graphs.random_digraph import connectivity_threshold_probability
from repro.store import ResultStore

N = 4096
TRIALS = 8


def test_bench_sweep_cache_cold_vs_warm(benchmark, tmp_path, monkeypatch):
    """A fully warm exact-mode sweep: zero engine rounds, >= 10x wall-clock."""
    p = connectivity_threshold_probability(N, delta=4.0)
    graph = GraphSpec("gnp", {"n": N, "p": p})
    protocol = ProtocolSpec("algorithm1", {"p": p})
    store = ResultStore(tmp_path / "cache")
    sweep = dict(
        repetitions=TRIALS,
        seed=0,
        run_to_quiescence=True,
        batch_mode="exact",
        store=store,
    )

    start = time.perf_counter()
    cold = repeat_job(graph, protocol, **sweep)
    cold_seconds = time.perf_counter() - start
    assert store.misses == TRIALS

    # Poison the shard executor: a warm sweep must never reach the engine.
    def engine_must_not_run(shard):
        raise AssertionError("engine ran during a fully warm sweep")

    monkeypatch.setattr(runner_module, "_execute_batch_shard", engine_must_not_run)
    store.reset_counters()

    warm = benchmark.pedantic(
        lambda: repeat_job(graph, protocol, **sweep), rounds=3, iterations=1
    )
    assert store.misses == 0 and store.hits > 0
    assert [r.completion_round for r in warm] == [
        r.completion_round for r in cold
    ]
    assert [r.energy for r in warm] == [r.energy for r in cold]

    warm_seconds = benchmark.stats.stats.min
    speedup = cold_seconds / warm_seconds
    benchmark.extra_info.update(
        {
            "n": N,
            "trials": TRIALS,
            "cold_seconds": cold_seconds,
            "warm_seconds": warm_seconds,
            "cache_speedup": speedup,
            "warm_engine_shards_executed": 0,
            "store_entries": store.stats()["entries"],
            "store_bytes": store.stats()["bytes"],
        }
    )
    print(
        f"\nE1 unit of work (n={N}, R={TRIALS}, exact): cold {cold_seconds:.3f}s, "
        f"warm {warm_seconds * 1e3:.1f} ms, {speedup:.0f}x"
    )
    # The acceptance bar for the sweep service is a >= 10x warm re-run; the
    # measured margin is orders of magnitude, but keep the hard gate
    # local-only like the other timing assertions (CI runners are noisy).
    if not os.environ.get("CI"):
        assert speedup >= 10.0
