"""Benchmark E6: Theorem 4.2: lambda sweep of the time/energy tradeoff.

Regenerates the E6 table of EXPERIMENTS.md (run with ``-s`` to see it).
"""


def test_bench_e6_tradeoff(benchmark, experiment_runner):
    result = experiment_runner(benchmark, "E6")
    assert result.rows
