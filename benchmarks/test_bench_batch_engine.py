"""Batched vs serial Monte-Carlo throughput (the tentpole micro-benchmark).

The unit of work is the E1 sweep cell: a full Algorithm-1 broadcast to
quiescence on a ``G(n, p)`` sample at ``n = 4096``, repeated over R seeds
with one topology sample per trial — exactly what ``repeat_job`` executes.
The serial path pays the Python round loop per trial; the batch engine
advances all R trials per vectorised round.  The measured speedup is stored
in ``benchmark.extra_info`` (and surfaced into ``BENCH_engine.json`` by
``benchmarks/run_benchmarks.sh``) so the perf trajectory is tracked across
PRs.

``test_bench_batch_vs_serial_protocol`` tracks the same number for the two
most-used protocols batched by the unified-pipeline PR — ``algorithm2``
(gossip, E4/E14/E16) and ``decay`` (the classic baseline, E14/E15) — so the
perf trajectory has more than one data point.

``test_bench_gossip_state_backends`` and ``test_bench_decay_state_backends``
track the node-set state layer at the scales it was built for: a gossip
batch whose dense knowledge tensor crosses ``R * n² > 10⁸`` bool cells
(memory + per-round throughput, dense vs bitset, peak allocation recorded)
and a large-``n`` decay run (trial throughput, dense vs sparse frontier).
"""

import os
import resource
import time
import tracemalloc

import pytest

from repro.baselines.decay import BatchDecayBroadcast, DecayBroadcast
from repro.core.broadcast_random import (
    BatchEnergyEfficientBroadcast,
    EnergyEfficientBroadcast,
)
from repro.core.gossip_random import BatchRandomNetworkGossip, RandomNetworkGossip
from repro.graphs.random_digraph import (
    connectivity_threshold_probability,
    random_digraph,
)
from repro.radio.batch import BatchEngine
from repro.radio.engine import SimulationEngine

N = 4096
MAX_TRIALS = 32


@pytest.fixture(scope="module")
def e1_workload():
    """32 pre-sampled G(n, p) topologies at the E1 benchmark size."""
    p = connectivity_threshold_probability(N, delta=4.0)
    networks = [random_digraph(N, p, rng=1000 + t) for t in range(MAX_TRIALS)]
    return networks, p


def _serial_seconds(networks, p, trials: int) -> float:
    engine = SimulationEngine(run_to_quiescence=True)
    start = time.perf_counter()
    for t in range(trials):
        engine.run(networks[t], EnergyEfficientBroadcast(p), rng=2000 + t)
    return time.perf_counter() - start


@pytest.mark.parametrize("trials", [8, 32])
def test_bench_batch_vs_serial_algorithm1(benchmark, e1_workload, trials):
    """R complete Algorithm-1 runs: batch engine vs serial loop."""
    networks, p = e1_workload
    nets = networks[:trials]

    def batched():
        return BatchEngine(run_to_quiescence=True).run(
            nets, BatchEnergyEfficientBroadcast(p), rng=7
        )

    results = benchmark.pedantic(batched, rounds=3, iterations=1)
    assert len(results) == trials
    assert max(r.energy.max_per_node for r in results) <= 1

    batch_seconds = benchmark.stats.stats.min
    serial_seconds = _serial_seconds(nets, p, trials)
    speedup = serial_seconds / batch_seconds
    benchmark.extra_info.update(
        {
            "n": N,
            "trials": trials,
            "serial_seconds": serial_seconds,
            "batch_seconds": batch_seconds,
            "serial_trials_per_second": trials / serial_seconds,
            "batch_trials_per_second": trials / batch_seconds,
            "speedup": speedup,
        }
    )
    print(
        f"\nn={N} R={trials}: serial {serial_seconds:.3f}s "
        f"({trials / serial_seconds:.1f} trials/s), "
        f"batch {batch_seconds:.3f}s ({trials / batch_seconds:.1f} trials/s), "
        f"speedup {speedup:.1f}x"
    )
    # Regression guard (the issue's acceptance bar is 5x at R=32; leave
    # headroom while still catching real regressions).  Timing ratios on
    # shared CI runners are too noisy for a hard gate, so the assertion is
    # local-only; CI still records the measured speedup in the JSON.
    if not os.environ.get("CI"):
        assert speedup >= (4.0 if trials == 32 else 2.0)


# (name, n, trials, serial factory, batch factory).  The cells sit where the
# repetition axis dominates: algorithm2's gossip state is an (R, n, n)
# knowledge tensor so it runs at a smaller n, and decay at large n is bound
# by collision-resolution edge work that batching cannot remove (its
# phase-start rounds transmit the whole informed set), so its cell uses the
# small-n / many-trials shape the E14/E15 comparison sweeps actually run.
_PROTOCOL_CASES = {
    "algorithm2": (
        512,
        16,
        lambda p: RandomNetworkGossip(p),
        lambda p: BatchRandomNetworkGossip(p),
    ),
    "decay": (
        512,
        64,
        lambda p: DecayBroadcast(),
        lambda p: BatchDecayBroadcast(),
    ),
}


@pytest.mark.parametrize("protocol_name", sorted(_PROTOCOL_CASES))
def test_bench_batch_vs_serial_protocol(benchmark, protocol_name):
    """R complete runs of a newly batched protocol: batch engine vs serial."""
    n, trials, make_serial, make_batch = _PROTOCOL_CASES[protocol_name]
    p = connectivity_threshold_probability(n, delta=4.0)
    networks = [random_digraph(n, p, rng=3000 + t) for t in range(trials)]

    def batched():
        return BatchEngine().run(networks, make_batch(p), rng=11)

    results = benchmark.pedantic(batched, rounds=3, iterations=1)
    assert len(results) == trials
    assert all(r.completed for r in results)

    batch_seconds = benchmark.stats.stats.min
    engine = SimulationEngine()
    start = time.perf_counter()
    for t in range(trials):
        engine.run(networks[t], make_serial(p), rng=4000 + t)
    serial_seconds = time.perf_counter() - start
    speedup = serial_seconds / batch_seconds
    benchmark.extra_info.update(
        {
            "protocol": protocol_name,
            "n": n,
            "trials": trials,
            "serial_seconds": serial_seconds,
            "batch_seconds": batch_seconds,
            "serial_trials_per_second": trials / serial_seconds,
            "batch_trials_per_second": trials / batch_seconds,
            "speedup": speedup,
        }
    )
    print(
        f"\n{protocol_name} n={n} R={trials}: serial {serial_seconds:.3f}s, "
        f"batch {batch_seconds:.3f}s, speedup {speedup:.1f}x"
    )
    # The issue's acceptance bar is 3x for the newly batched protocols; gate
    # locally only (shared CI runners are too noisy for timing asserts).
    if not os.environ.get("CI"):
        assert speedup >= 3.0


def test_bench_gossip_state_backends(benchmark):
    """Large-n gossip: bitset-packed vs dense knowledge tensors.

    The cell sits just past the dense ceiling named in the ROADMAP:
    ``R * n² = 8 * 4096² ≈ 1.34e8`` bool cells (~128 MiB for the tensor
    alone), which the bitset backend packs into ~17 MiB of uint64 words.
    A fixed number of rounds is simulated (the protocol would take thousands
    to complete at this n; throughput per round is the tracked quantity) and
    the peak engine allocation of each backend is recorded via tracemalloc,
    plus the process peak RSS for context.
    """
    n, trials, rounds = 4096, 8, 24
    p = connectivity_threshold_probability(n, delta=4.0)
    networks = [random_digraph(n, p, rng=5000 + t) for t in range(trials)]

    def run(backend):
        tracemalloc.start()
        start = time.perf_counter()
        BatchEngine(state_backend=backend).run(
            networks, BatchRandomNetworkGossip(p), rng=3, max_rounds=rounds
        )
        seconds = time.perf_counter() - start
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        return seconds, peak

    def bitset_run():
        return run("bitset")

    bitset_seconds, bitset_peak = benchmark.pedantic(
        bitset_run, rounds=2, iterations=1
    )
    dense_seconds, dense_peak = run("dense")
    memory_ratio = dense_peak / bitset_peak
    benchmark.extra_info.update(
        {
            "n": n,
            "trials": trials,
            "rounds": rounds,
            "bool_cells": trials * n * n,
            "dense_peak_mib": dense_peak / 2**20,
            "bitset_peak_mib": bitset_peak / 2**20,
            "memory_ratio": memory_ratio,
            "dense_rounds_per_second": rounds / dense_seconds,
            "bitset_rounds_per_second": rounds / bitset_seconds,
            "round_speedup": dense_seconds / bitset_seconds,
            "process_peak_rss_mib": resource.getrusage(
                resource.RUSAGE_SELF
            ).ru_maxrss
            / 1024,
        }
    )
    print(
        f"\ngossip n={n} R={trials} ({trials * n * n / 1e8:.1f}e8 bool cells): "
        f"dense {dense_peak / 2**20:.0f} MiB peak / "
        f"{rounds / dense_seconds:.1f} rounds/s, "
        f"bitset {bitset_peak / 2**20:.0f} MiB peak / "
        f"{rounds / bitset_seconds:.1f} rounds/s "
        f"({memory_ratio:.1f}x memory, "
        f"{dense_seconds / bitset_seconds:.1f}x rounds)"
    )
    # The memory footprint is deterministic (no timing noise), so this gate
    # holds on CI too: a dense tensor this size cannot fit a budget the
    # bitset backend clears four times over.
    assert memory_ratio >= 4.0
    if not os.environ.get("CI"):
        assert bitset_seconds < dense_seconds


def test_bench_decay_state_backends(benchmark):
    """Large-n decay: sparse frontier pools vs dense quota masks.

    The cell is the regime the sparse backend was built for: a
    high-diameter, low-degree topology (a 128x128 grid, n = 16384) under the
    retirement-capped Decay variant, where the live frontier is a thin band
    moving across the grid.  The run lasts thousands of rounds; the dense
    backend re-scans all ``R * n`` quota cells every round while the sparse
    pool only touches the band (and halves within each phase).  On
    edge-dense G(n, p) workloads the phase-start collision gathers dominate
    instead and the two backends converge — that regime is covered by
    ``test_bench_batch_vs_serial_protocol[decay]``.
    """
    import numpy as np

    from repro.graphs import structured
    from repro.radio.batch import NetworkBatch

    trials, max_phases_active = 8, 10
    network = structured.grid_network(128, 128)
    n = network.n
    batch = NetworkBatch.shared(network, trials)

    def run(backend):
        start = time.perf_counter()
        results = BatchEngine(state_backend=backend).run(
            batch,
            BatchDecayBroadcast(max_phases_active=max_phases_active),
            rng=11,
            max_rounds=25000,
        )
        return time.perf_counter() - start, results

    def sparse_run():
        return run("sparse")

    sparse_seconds, results = benchmark.pedantic(sparse_run, rounds=2, iterations=1)
    assert all(r.completed for r in results)
    rounds = int(np.max([r.rounds_executed for r in results]))
    dense_seconds, _ = run("dense")
    speedup = dense_seconds / sparse_seconds
    benchmark.extra_info.update(
        {
            "n": n,
            "trials": trials,
            "max_phases_active": max_phases_active,
            "rounds": rounds,
            "dense_seconds": dense_seconds,
            "sparse_seconds": sparse_seconds,
            "dense_trials_per_second": trials / dense_seconds,
            "sparse_trials_per_second": trials / sparse_seconds,
            "frontier_speedup": speedup,
        }
    )
    print(
        f"\ndecay grid n={n} R={trials} ({rounds} rounds): "
        f"dense {dense_seconds:.2f}s ({trials / dense_seconds:.1f} trials/s), "
        f"sparse {sparse_seconds:.2f}s ({trials / sparse_seconds:.1f} trials/s), "
        f"speedup {speedup:.2f}x"
    )
    # Timing gate is local-only (shared CI runners are too noisy); CI still
    # records the measured ratio in the JSON.
    if not os.environ.get("CI"):
        assert speedup >= 1.2


def test_bench_batch_collision_round(benchmark, e1_workload):
    """One batched collision-resolution round for 32 stacked trials."""
    import numpy as np

    from repro.radio.batch import NetworkBatch
    from repro.radio.collision import BatchStandardCollisionModel

    networks, _ = e1_workload
    batch = NetworkBatch(networks)
    rng = np.random.default_rng(5)
    masks = rng.random((batch.trials, batch.n)) < 0.1
    model = BatchStandardCollisionModel()
    outcome = benchmark(lambda: model.resolve(batch, masks))
    assert outcome.hear_counts.shape == (batch.trials, batch.n)


def test_bench_batched_repeat_job(benchmark, e1_workload):
    """The experiment-layer fast path end to end (includes topology sampling)."""
    from repro.experiments.protocols import ProtocolSpec
    from repro.experiments.runner import repeat_job
    from repro.graphs.builders import GraphSpec

    _, p = e1_workload
    graph = GraphSpec("gnp", {"n": N, "p": p})
    protocol = ProtocolSpec("algorithm1", {"p": p})

    def run():
        return repeat_job(
            graph,
            protocol,
            repetitions=8,
            seed=0,
            run_to_quiescence=True,
        )

    results = benchmark.pedantic(run, rounds=2, iterations=1)
    assert len(results) == 8
