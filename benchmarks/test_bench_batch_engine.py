"""Batched vs serial Monte-Carlo throughput (the tentpole micro-benchmark).

The unit of work is the E1 sweep cell: a full Algorithm-1 broadcast to
quiescence on a ``G(n, p)`` sample at ``n = 4096``, repeated over R seeds
with one topology sample per trial — exactly what ``repeat_job`` executes.
The serial path pays the Python round loop per trial; the batch engine
advances all R trials per vectorised round.  The measured speedup is stored
in ``benchmark.extra_info`` (and surfaced into ``BENCH_engine.json`` by
``benchmarks/run_benchmarks.sh``) so the perf trajectory is tracked across
PRs.
"""

import os
import time

import pytest

from repro.core.broadcast_random import (
    BatchEnergyEfficientBroadcast,
    EnergyEfficientBroadcast,
)
from repro.graphs.random_digraph import (
    connectivity_threshold_probability,
    random_digraph,
)
from repro.radio.batch import BatchEngine
from repro.radio.engine import SimulationEngine

N = 4096
MAX_TRIALS = 32


@pytest.fixture(scope="module")
def e1_workload():
    """32 pre-sampled G(n, p) topologies at the E1 benchmark size."""
    p = connectivity_threshold_probability(N, delta=4.0)
    networks = [random_digraph(N, p, rng=1000 + t) for t in range(MAX_TRIALS)]
    return networks, p


def _serial_seconds(networks, p, trials: int) -> float:
    engine = SimulationEngine(run_to_quiescence=True)
    start = time.perf_counter()
    for t in range(trials):
        engine.run(networks[t], EnergyEfficientBroadcast(p), rng=2000 + t)
    return time.perf_counter() - start


@pytest.mark.parametrize("trials", [8, 32])
def test_bench_batch_vs_serial_algorithm1(benchmark, e1_workload, trials):
    """R complete Algorithm-1 runs: batch engine vs serial loop."""
    networks, p = e1_workload
    nets = networks[:trials]

    def batched():
        return BatchEngine(run_to_quiescence=True).run(
            nets, BatchEnergyEfficientBroadcast(p), rng=7
        )

    results = benchmark.pedantic(batched, rounds=3, iterations=1)
    assert len(results) == trials
    assert max(r.energy.max_per_node for r in results) <= 1

    batch_seconds = benchmark.stats.stats.min
    serial_seconds = _serial_seconds(nets, p, trials)
    speedup = serial_seconds / batch_seconds
    benchmark.extra_info.update(
        {
            "n": N,
            "trials": trials,
            "serial_seconds": serial_seconds,
            "batch_seconds": batch_seconds,
            "serial_trials_per_second": trials / serial_seconds,
            "batch_trials_per_second": trials / batch_seconds,
            "speedup": speedup,
        }
    )
    print(
        f"\nn={N} R={trials}: serial {serial_seconds:.3f}s "
        f"({trials / serial_seconds:.1f} trials/s), "
        f"batch {batch_seconds:.3f}s ({trials / batch_seconds:.1f} trials/s), "
        f"speedup {speedup:.1f}x"
    )
    # Regression guard (the issue's acceptance bar is 5x at R=32; leave
    # headroom while still catching real regressions).  Timing ratios on
    # shared CI runners are too noisy for a hard gate, so the assertion is
    # local-only; CI still records the measured speedup in the JSON.
    if not os.environ.get("CI"):
        assert speedup >= (4.0 if trials == 32 else 2.0)


def test_bench_batch_collision_round(benchmark, e1_workload):
    """One batched collision-resolution round for 32 stacked trials."""
    import numpy as np

    from repro.radio.batch import NetworkBatch
    from repro.radio.collision import BatchStandardCollisionModel

    networks, _ = e1_workload
    batch = NetworkBatch(networks)
    rng = np.random.default_rng(5)
    masks = rng.random((batch.trials, batch.n)) < 0.1
    model = BatchStandardCollisionModel()
    outcome = benchmark(lambda: model.resolve(batch, masks))
    assert outcome.hear_counts.shape == (batch.trials, batch.n)


def test_bench_batched_repeat_job(benchmark, e1_workload):
    """The experiment-layer fast path end to end (includes topology sampling)."""
    from repro.experiments.protocols import ProtocolSpec
    from repro.experiments.runner import repeat_job
    from repro.graphs.builders import GraphSpec

    _, p = e1_workload
    graph = GraphSpec("gnp", {"n": N, "p": p})
    protocol = ProtocolSpec("algorithm1", {"p": p})

    def run():
        return repeat_job(
            graph,
            protocol,
            repetitions=8,
            seed=0,
            run_to_quiescence=True,
        )

    results = benchmark.pedantic(run, rounds=2, iterations=1)
    assert len(results) == 8
