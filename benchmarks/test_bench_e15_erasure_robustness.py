"""Benchmark E15: erasure (fading) robustness ablation.

Regenerates the E15 table of EXPERIMENTS.md (run with ``-s`` to see it).
"""


def test_bench_e15_erasure_robustness(benchmark, experiment_runner):
    result = experiment_runner(benchmark, "E15")
    assert result.rows
