"""Benchmark E4: Theorem 3.2: Algorithm 2 gossip time and per-node transmissions.

Regenerates the E4 table of EXPERIMENTS.md (run with ``-s`` to see it).
"""


def test_bench_e4_gossip(benchmark, experiment_runner):
    result = experiment_runner(benchmark, "E4")
    assert result.rows
