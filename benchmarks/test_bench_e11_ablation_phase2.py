"""Benchmark E11: Ablation: Phase 2 of Algorithm 1.

Regenerates the E11 table of EXPERIMENTS.md (run with ``-s`` to see it).
"""


def test_bench_e11_ablation_phase2(benchmark, experiment_runner):
    result = experiment_runner(benchmark, "E11")
    assert result.rows
