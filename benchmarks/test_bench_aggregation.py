"""Streaming vs materialised aggregation at high trial counts.

The unit of work is a 10⁴-trial Decay sweep on a small ``G(n, p)`` — big
enough in the repetition axis that holding every
:class:`~repro.radio.trace.RunResultTrace` is the dominant memory cost, small
enough per trial that the cell finishes in CI time.  ``p`` sits at the
δ=4 connectivity threshold — the regime every experiment sweeps.  (It was
0.3 before PR 7, *below* the n=24 threshold, which put ~0.5% of trials on
disconnected graphs; those never complete, so every bounded shard burned
the full ``suggested_max_rounds`` cap and the cell measured the round cap,
not the aggregation paths.)  Two children measure the
same sweep end to end (``spawn`` start method; peak RSS is tracked by an
in-child VmRSS sampler, since ``ru_maxrss`` is inherited across fork/exec on
recent kernels and would read the pytest parent's high-water mark back):

* **materialised** — ``repeat_job`` collects all R traces, then reduces them
  (the pre-scenario-layer shape of every experiment);
* **streaming** — the scenario cell reduces each trial into
  :class:`~repro.analysis.streaming.MetricAccumulator`\\ s as its shard
  completes and drops the trace, with bounded-size shards
  (:data:`repro.scenarios.runtime.DEFAULT_SHARD_TRIALS`), so peak memory is
  flat in R.

The headline numbers (peak RSS per path, trials/s, the memory ratio) land in
``BENCH_engine.json`` via ``benchmarks/run_benchmarks.sh`` and the CI
summary.  The assertion is deliberately loose — the *sweep-attributable*
RSS (each path's peak minus a small-R baseline child's) must stay below
half the materialised path's, where the measured ratio is ~0.2 — because
the point recorded is the *shape*: materialised grows linearly in R,
streaming does not.  A second, local-only gate pins throughput: streaming
must run within 5% of the materialised sweep in the best of three paired
runs, so the flat-memory path never quietly becomes the slow path.
"""

import multiprocessing
import os
import time

N = 24
TRIALS = 10_000
_METRICS = ("success", "completion_round", "total_tx", "mean_tx_per_node")


def _workload():
    from repro.experiments.common import threshold_p
    from repro.experiments.protocols import ProtocolSpec
    from repro.graphs.builders import GraphSpec

    p = round(threshold_p(N), 4)
    return GraphSpec("gnp", {"n": N, "p": p}), ProtocolSpec("decay", {})


class _PeakRssSampler:
    """Track the child's peak *current* RSS by sampling ``/proc/self/statm``.

    ``getrusage().ru_maxrss`` (and VmHWM) is inherited across fork/exec on
    recent kernels, so a child spawned from a fat pytest parent would just
    read the parent's high-water mark back.  Sampling VmRSS on a watcher
    thread measures what this process actually uses; the trace-list growth
    this benchmark quantifies is steady, so 5 ms sampling captures it.
    """

    def __init__(self, interval: float = 0.005) -> None:
        import threading

        self.interval = interval
        self.peak_mb = 0.0
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._loop, daemon=True)

    def _current_mb(self) -> float:
        import os

        with open("/proc/self/statm") as handle:
            resident_pages = int(handle.read().split()[1])
        return resident_pages * os.sysconf("SC_PAGE_SIZE") / (1024.0 * 1024.0)

    def _loop(self) -> None:
        while not self._stop.is_set():
            current = self._current_mb()
            if current > self.peak_mb:
                self.peak_mb = current
            self._stop.wait(self.interval)

    def start(self) -> "_PeakRssSampler":
        self.peak_mb = self._current_mb()
        self._thread.start()
        return self

    def stop(self) -> float:
        self._stop.set()
        self._thread.join(timeout=5)
        return max(self.peak_mb, self._current_mb())


def _measure_baseline(queue) -> None:
    """Child: same stack, tiny R — the R-independent RSS floor (interpreter,
    numpy, engine imports) both paths pay before any trace accumulates."""
    from repro.experiments.runner import repeat_job

    sampler = _PeakRssSampler().start()
    graph, protocol = _workload()
    repeat_job(graph, protocol, repetitions=64, seed=11, store=False)
    queue.put({"peak_rss_mb": sampler.stop()})


def _measure_materialised(queue) -> None:
    """Child: run the sweep holding every trace, reduce at the end."""
    from repro.experiments.runner import repeat_job

    sampler = _PeakRssSampler().start()
    graph, protocol = _workload()
    start = time.perf_counter()
    traces = repeat_job(
        graph, protocol, repetitions=TRIALS, seed=11, store=False
    )
    total_tx_mean = sum(t.energy.total_transmissions for t in traces) / len(traces)
    elapsed = time.perf_counter() - start
    queue.put(
        {
            "elapsed": elapsed,
            "peak_rss_mb": sampler.stop(),
            "trials": len(traces),
            "total_tx_mean": total_tx_mean,
        }
    )


def _measure_streaming(queue) -> None:
    """Child: run the same sweep through the streaming scenario cell."""
    from repro.scenarios import SweepCell, run_cell

    sampler = _PeakRssSampler().start()
    graph, protocol = _workload()
    cell = SweepCell(
        coords={"n": N},
        graph=graph,
        protocol=protocol,
        repetitions=TRIALS,
    )
    start = time.perf_counter()
    result = run_cell(cell, seed=11, metrics=_METRICS, store=False)
    elapsed = time.perf_counter() - start
    queue.put(
        {
            "elapsed": elapsed,
            "peak_rss_mb": sampler.stop(),
            "trials": result.trials,
            "total_tx_mean": result.mean("total_tx"),
        }
    )


def _run_child(target) -> dict:
    context = multiprocessing.get_context("spawn")
    queue = context.Queue()
    child = context.Process(target=target, args=(queue,))
    child.start()
    outcome = queue.get(timeout=1800)
    child.join(timeout=60)
    return outcome


def test_bench_streaming_aggregation_memory_flat(benchmark):
    """10⁴-trial streaming sweep: flat peak RSS vs the materialised path."""
    streaming = {}

    def target():
        streaming.update(_run_child(_measure_streaming))
        return streaming

    benchmark.pedantic(target, rounds=1, iterations=1)
    materialised = _run_child(_measure_materialised)
    baseline = _run_child(_measure_baseline)
    # Wall-clock on a shared box jitters a few percent run to run, so the
    # throughput claim is made on paired runs: each (streaming, materialised)
    # pair runs back to back and the gate takes the best pair ratio, while
    # the reported trials/s come from each path's best run.  The RSS
    # comparison keeps the first runs — peak memory is stable.
    pairs = [(streaming["elapsed"], materialised["elapsed"])]
    for _ in range(2):
        pairs.append(
            (
                _run_child(_measure_streaming)["elapsed"],
                _run_child(_measure_materialised)["elapsed"],
            )
        )
    streaming_best = min(s for s, _ in pairs)
    materialised_best = min(m for _, m in pairs)

    assert streaming["trials"] == materialised["trials"] == TRIALS
    # Same workload, same per-trial seeds (fast-mode draws differ by shard
    # layout, so the means agree statistically, not bitwise).
    assert abs(streaming["total_tx_mean"] - materialised["total_tx_mean"]) < 2.0

    floor = baseline["peak_rss_mb"]
    streaming_delta = max(streaming["peak_rss_mb"] - floor, 0.1)
    materialised_delta = max(materialised["peak_rss_mb"] - floor, 0.1)
    ratio = streaming_delta / materialised_delta
    streaming_tps = TRIALS / streaming_best
    materialised_tps = TRIALS / materialised_best
    throughput_ratio = max(m / s for s, m in pairs)
    print(
        f"\nbaseline (R=64): {floor:.0f} MiB peak"
        f"\nstreaming:    {streaming['peak_rss_mb']:.0f} MiB peak "
        f"(+{streaming_delta:.0f}), {streaming_tps:.0f} trials/s"
        f"\nmaterialised: {materialised['peak_rss_mb']:.0f} MiB peak "
        f"(+{materialised_delta:.0f}), "
        f"{materialised_tps:.0f} trials/s"
        f"\nsweep-attributable RSS ratio: {ratio:.2f}"
        f"\nthroughput ratio (streaming / materialised, best of "
        f"{len(pairs)} pairs): {throughput_ratio:.2f}"
    )
    benchmark.extra_info["aggregation_trials"] = TRIALS
    benchmark.extra_info["baseline_peak_rss_mb"] = floor
    benchmark.extra_info["streaming_peak_rss_mb"] = streaming["peak_rss_mb"]
    benchmark.extra_info["materialised_peak_rss_mb"] = materialised["peak_rss_mb"]
    benchmark.extra_info["streaming_trials_per_second"] = streaming_tps
    benchmark.extra_info["materialised_trials_per_second"] = materialised_tps
    benchmark.extra_info["aggregation_rss_ratio"] = ratio
    benchmark.extra_info["aggregation_throughput_ratio"] = throughput_ratio

    # The recorded claim: the streaming reduction does not pay the
    # R-proportional trace-list cost the materialised path does — the
    # sweep-attributable part of its peak stays a small fraction.
    assert ratio < 0.5, (streaming["peak_rss_mb"], materialised["peak_rss_mb"], floor)
    # And it pays no throughput tax for the flat memory: with buffered
    # vectorised ingest and shared-batch reuse the streaming cell runs at
    # parity with the materialised sweep (measured ~0.9-1.2x; the gate
    # leaves 5% for noise).  Local-only — shared CI runners jitter too
    # much to gate on wall time.
    if not os.environ.get("CI"):
        assert throughput_ratio >= 0.95, (streaming_best, materialised_best)
