#!/usr/bin/env bash
# Tier-1 tests + engine micro-benchmarks, with the headline numbers written
# to BENCH_engine.json so the perf trajectory is tracked across PRs.
#
# Usage: bash benchmarks/run_benchmarks.sh [output.json]
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_engine.json}"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"
# Benchmarks must measure the engine, not a warm result store: the bench
# conftest clears the ambient store per run (REPRO_BENCH_CACHE=<dir> opts
# back in), and any inherited cache dir is dropped here for good measure.
unset REPRO_CACHE_DIR

echo "== tier-1 tests =="
python -m pytest -x -q --ignore=benchmarks

echo "== engine micro-benchmarks =="
python -m pytest -q \
    benchmarks/test_bench_engine_micro.py \
    benchmarks/test_bench_kernels.py \
    benchmarks/test_bench_batch_engine.py \
    benchmarks/test_bench_compaction.py \
    benchmarks/test_bench_environment.py \
    benchmarks/test_bench_telemetry.py \
    benchmarks/test_bench_store.py \
    benchmarks/test_bench_aggregation.py \
    --benchmark-json="$RAW"

python benchmarks/summarize_engine_bench.py "$RAW" "$OUT"
echo "wrote $OUT"
