"""Benchmark E9: Fig. 1: the alpha vs alpha' distributions.

Regenerates the E9 table of EXPERIMENTS.md (run with ``-s`` to see it).
"""


def test_bench_e9_distributions(benchmark, experiment_runner):
    result = experiment_runner(benchmark, "E9")
    assert result.rows
