"""Benchmark E3: Lemma 3.1: diameter of directed G(n, p) vs ceil(log n / log d).

Regenerates the E3 table of EXPERIMENTS.md (run with ``-s`` to see it).
"""


def test_bench_e3_diameter(benchmark, experiment_runner):
    result = experiment_runner(benchmark, "E3")
    assert result.rows
