"""Benchmark E10: Corollary 4.5: Omega(log^2 n) energy under a c*n time budget.

Regenerates the E10 table of EXPERIMENTS.md (run with ``-s`` to see it).
"""


def test_bench_e10_corollary45(benchmark, experiment_runner):
    result = experiment_runner(benchmark, "E10")
    assert result.rows
