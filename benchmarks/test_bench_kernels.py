"""Collision-kernel micro-benchmarks: compiled fused vs numpy reference.

The unit of work is the ISSUE's acceptance cell — one batched
collision-resolution round on a shared-topology ``NetworkBatch`` at
``n = 4096``, ``R = 32`` with ~10% of nodes transmitting — resolved by the
numpy reference path and by the fused compiled kernel.  When numba is
installed the compiled kernel must clear a 2x speedup over numpy on this
cell (asserted locally; CI records the numbers without gating, and the
no-numba leg records ``compiled_available: false`` with speedup ~1.0 since
``"compiled"`` then resolves to the numpy path).

A third cell times the opt-in edge-sampled approximation on the same
batch so its headroom over even the fused exact kernel is tracked.

Kernels are warmed (JIT compile + first-call caches) before any timing —
see ``warm_collision_kernels`` in ``conftest.py``.
"""

import os

import numpy as np
import pytest

from repro.graphs.random_digraph import (
    connectivity_threshold_probability,
    random_digraph,
)
from repro.radio import kernels
from repro.radio.batch import BatchRandomSource, NetworkBatch
from repro.radio.collision import BatchStandardCollisionModel

N = 4096
R = 32
TX_FRACTION = 0.1


@pytest.fixture(scope="module")
def collision_cell():
    """Shared batch + transmitter set for every kernel variant."""
    p = connectivity_threshold_probability(N, delta=4.0)
    network = random_digraph(N, p, rng=3)
    batch = NetworkBatch.shared(network, R)
    rng = np.random.default_rng(7)
    mask = rng.random(batch.total_nodes) < TX_FRACTION
    tx_flat = np.flatnonzero(mask).astype(np.int64)
    return batch, tx_flat


def _timed_rounds(model, batch, tx_flat, rounds=5):
    """Best-of-N wall time for one resolution round (for the speedup ratio)."""
    import time

    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        model._batch_exactly_one_rule(batch, tx_flat)
        best = min(best, time.perf_counter() - start)
    return best


def test_bench_collision_kernel_numpy(benchmark, collision_cell):
    """Numpy reference: one fused-equivalent round at n=4096, R=32."""
    batch, tx_flat = collision_cell
    model = BatchStandardCollisionModel()
    model.kernel = "numpy"
    outcome = benchmark.pedantic(
        lambda: model._batch_exactly_one_rule(batch, tx_flat),
        rounds=10,
        iterations=1,
        warmup_rounds=2,
    )
    assert outcome.hear_counts.shape == (R, N)
    benchmark.extra_info["kernel"] = "numpy"
    benchmark.extra_info["batch_nodes"] = batch.total_nodes


def test_bench_collision_kernel_compiled(benchmark, collision_cell):
    """Compiled fused kernel vs numpy on the same round (2x gate when JIT'd).

    Records ``collision_kernel_speedup`` (numpy / compiled best-of-N) so the
    ratio lands in BENCH_engine.json on both CI legs.  Without numba the
    "compiled" kernel IS the numpy path, so the ratio hovers around 1.0 and
    the gate is skipped.
    """
    batch, tx_flat = collision_cell
    compiled_model = BatchStandardCollisionModel()
    compiled_model.kernel = "compiled"
    numpy_model = BatchStandardCollisionModel()
    numpy_model.kernel = "numpy"

    outcome = benchmark.pedantic(
        lambda: compiled_model._batch_exactly_one_rule(batch, tx_flat),
        rounds=10,
        iterations=1,
        warmup_rounds=2,
    )
    assert outcome.hear_counts.shape == (R, N)

    # Bitwise agreement on the benchmarked inputs (the full equivalence
    # matrix lives in tests/test_kernels.py; this pins the timed cell).
    reference = numpy_model._batch_exactly_one_rule(batch, tx_flat)
    np.testing.assert_array_equal(outcome.receiver_flat, reference.receiver_flat)

    numpy_best = _timed_rounds(numpy_model, batch, tx_flat)
    compiled_best = _timed_rounds(compiled_model, batch, tx_flat)
    speedup = numpy_best / compiled_best
    benchmark.extra_info["kernel"] = "compiled"
    benchmark.extra_info["compiled_available"] = kernels.compiled_available()
    benchmark.extra_info["numpy_round_seconds"] = numpy_best
    benchmark.extra_info["compiled_round_seconds"] = compiled_best
    benchmark.extra_info["collision_kernel_speedup"] = speedup
    print(
        f"\ncollision round n={N} R={R}: numpy {numpy_best * 1e3:.2f} ms, "
        f"compiled {compiled_best * 1e3:.2f} ms "
        f"({speedup:.2f}x, numba={'yes' if kernels.compiled_available() else 'no'})"
    )

    # The acceptance gate: with numba present the fused kernel must at least
    # double the numpy reference on this cell.  Local-only — shared CI
    # runners are too noisy to gate on wall time.
    if kernels.compiled_available() and not os.environ.get("CI"):
        assert speedup >= 2.0, (numpy_best, compiled_best)


def test_bench_collision_kernel_edge_sampled(benchmark, collision_cell):
    """Edge-sampled approximation on the same cell (fast mode only)."""
    batch, tx_flat = collision_cell
    model = BatchStandardCollisionModel()
    model.kernel = "edge_sampled"
    source = BatchRandomSource.fast(13)
    outcome = benchmark.pedantic(
        lambda: model._batch_exactly_one_rule(
            batch, tx_flat, rng_source=source
        ),
        rounds=10,
        iterations=1,
        warmup_rounds=2,
    )
    assert outcome.receiver_flat.size > 0
    benchmark.extra_info["kernel"] = "edge_sampled"
    benchmark.extra_info["tracks_senders"] = outcome.tracks_senders
