"""Benchmark E12: Ablation: the beta constants of Algorithms 1 and 3.

Regenerates the E12 table of EXPERIMENTS.md (run with ``-s`` to see it).
"""


def test_bench_e12_ablation_beta(benchmark, experiment_runner):
    result = experiment_runner(benchmark, "E12")
    assert result.rows
