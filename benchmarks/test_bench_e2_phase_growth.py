"""Benchmark E2: Lemmas 2.3-2.5: Phase-wise growth of Algorithm 1's active set.

Regenerates the E2 table of EXPERIMENTS.md (run with ``-s`` to see it).
"""


def test_bench_e2_phase_growth(benchmark, experiment_runner):
    result = experiment_runner(benchmark, "E2")
    assert result.rows
