"""Shared helpers for the benchmark suite.

Every experiment benchmark runs its experiment once (pytest-benchmark
``pedantic`` with a single round — the workloads are seconds-long sweeps, not
microseconds-long kernels), prints the resulting table so the run regenerates
the EXPERIMENTS.md numbers, and stores the headline numbers in
``benchmark.extra_info`` so they appear in the benchmark JSON.

The experiment benchmarks route through the store-aware runner with
**caching disabled**: a warm result store would turn an engine benchmark
into a disk-read benchmark, so the ambient store is cleared for every
benchmarked run regardless of environment (``REPRO_CACHE_DIR``, an earlier
``configure_execution`` call, …).  Set ``REPRO_BENCH_CACHE=<dir>`` to opt
into a store-backed run — e.g. to measure warm-sweep behaviour by hand; the
dedicated cold-vs-warm cell lives in ``test_bench_store.py`` and manages its
own store.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.registry import run_experiment
from repro.experiments.runner import configure_execution
from repro.radio.kernels import warm_kernels


@pytest.fixture(scope="session", autouse=True)
def warm_collision_kernels():
    """JIT-compile the fused kernels once before any benchmark is timed.

    With numba installed the first fused call pays the compilation cost
    (hundreds of ms); warming here keeps that out of every measured round.
    Without numba this is a no-op.
    """
    warm_kernels()


def run_experiment_benchmark(benchmark, experiment_id: str, *, scale: str = "quick", seed: int = 0):
    """Run one experiment under pytest-benchmark and print its table."""
    result_holder = {}
    opt_in = os.environ.get("REPRO_BENCH_CACHE")
    configure_execution(store=opt_in if opt_in else None)

    def target():
        result_holder["result"] = run_experiment(experiment_id, scale=scale, seed=seed)
        return result_holder["result"]

    benchmark.pedantic(target, rounds=1, iterations=1)
    result = result_holder["result"]
    print()
    print(result.render())
    benchmark.extra_info["experiment_id"] = result.experiment_id
    benchmark.extra_info["rows"] = len(result.rows)
    benchmark.extra_info["notes"] = list(result.notes)
    return result


@pytest.fixture
def experiment_runner():
    """Fixture exposing :func:`run_experiment_benchmark`."""
    return run_experiment_benchmark
