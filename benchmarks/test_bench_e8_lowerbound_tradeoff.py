"""Benchmark E8: Theorem 4.4 / Fig. 2: time vs per-node energy frontier.

Regenerates the E8 table of EXPERIMENTS.md (run with ``-s`` to see it).
"""


def test_bench_e8_lowerbound_tradeoff(benchmark, experiment_runner):
    result = experiment_runner(benchmark, "E8")
    assert result.rows
