"""Condense a pytest-benchmark JSON into the tracked BENCH_engine.json.

Keeps one entry per benchmark (min/mean seconds plus any ``extra_info`` the
benchmark recorded — notably the batched-vs-serial speedups) so the file
stays small enough to diff across PRs.

Usage: python benchmarks/summarize_engine_bench.py raw.json BENCH_engine.json
"""

from __future__ import annotations

import json
import sys


def summarize(raw_path: str, out_path: str) -> dict:
    with open(raw_path) as handle:
        raw = json.load(handle)

    benches = {}
    for bench in raw.get("benchmarks", []):
        entry = {
            "min_seconds": bench["stats"]["min"],
            "mean_seconds": bench["stats"]["mean"],
            "rounds": bench["stats"]["rounds"],
        }
        extra = bench.get("extra_info")
        if extra:
            entry["extra_info"] = extra
            # A kernel cell measured without numba compares the numpy path
            # against itself; its "compiled" speedup is dispatch noise, not
            # a kernel measurement — flag it so nobody reads ~1x (or the
            # infamous 0.87x) as a compiled-kernel regression.
            if (
                "collision_kernel_speedup" in extra
                and not extra.get("compiled_available", True)
            ):
                entry["warning"] = (
                    "compiled kernel unavailable: speedup is numpy racing "
                    "itself"
                )
        benches[bench["name"]] = entry

    summary = {
        "machine_info": {
            key: raw.get("machine_info", {}).get(key)
            for key in ("node", "processor", "python_version")
        },
        "datetime": raw.get("datetime"),
        "benchmarks": benches,
    }
    with open(out_path, "w") as handle:
        json.dump(summary, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return summary


if __name__ == "__main__":
    if len(sys.argv) != 3:
        sys.exit(__doc__)
    result = summarize(sys.argv[1], sys.argv[2])
    for name, entry in sorted(result["benchmarks"].items()):
        extra = entry.get("extra_info", {})
        speed = f"  speedup={extra['speedup']:.1f}x" if "speedup" in extra else ""
        if "environment_overhead_ratio" in extra:
            speed += f"  null-env overhead={extra['environment_overhead_ratio']:.3f}x"
        if "telemetry_overhead_ratio" in extra:
            speed += f"  telemetry overhead={extra['telemetry_overhead_ratio']:.3f}x"
        if "collision_kernel_speedup" in extra:
            speed += (
                f"  compiled/numpy={extra['collision_kernel_speedup']:.2f}x"
                f" (numba={'yes' if extra.get('compiled_available') else 'no'})"
            )
        if "aggregation_throughput_ratio" in extra:
            speed += (
                "  streaming/materialised="
                f"{extra['aggregation_throughput_ratio']:.2f}x"
            )
        if "compaction_speedup" in extra:
            speed += (
                f"  continuous/sharded={extra['compaction_speedup']:.2f}x"
                f" trials/s"
            )
        if "compaction_uniform_ratio" in extra:
            speed += (
                f"  uniform-cell ratio={extra['compaction_uniform_ratio']:.2f}x"
            )
        if "warning" in entry:
            speed += f"  [WARNING: {entry['warning']}]"
        print(f"{name}: min={entry['min_seconds'] * 1e3:.1f} ms{speed}")
