"""Benchmark E7: Observation 4.3: total-transmission lower bound on the relay network.

Regenerates the E7 table of EXPERIMENTS.md (run with ``-s`` to see it).
"""


def test_bench_e7_lowerbound_total(benchmark, experiment_runner):
    result = experiment_runner(benchmark, "E7")
    assert result.rows
