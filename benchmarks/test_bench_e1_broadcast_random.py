"""Benchmark E1: Theorem 2.1: Algorithm 1 broadcast time, per-node and total energy on G(n, p).

Regenerates the E1 table of EXPERIMENTS.md (run with ``-s`` to see it).
"""


def test_bench_e1_broadcast_random(benchmark, experiment_runner):
    result = experiment_runner(benchmark, "E1")
    assert result.rows
