"""Telemetry overhead: instrumented engine, pipeline on vs off.

The telemetry spine promises to be near-free when disabled: every
instrumented call site in the hot layers reduces to one module-global
load and comparison (hot loops hoist it into a local per run).  This
cell measures the acceptance workload — a Decay repetition sweep on the
``n=4096 / R=32`` cell — with the pipeline disabled (which *is* the
bare engine: no pipeline object exists) against the same sweep with a
pipeline installed on a :class:`~repro.telemetry.NullSink` (full record
construction and registry updates, no I/O), and records
``telemetry_overhead_ratio`` (enabled seconds / disabled seconds) into
``BENCH_engine.json``.  A file-sink run is timed alongside for context:
it pays JSON encoding and a flushed write per record, so its ratio is
informative, not gated.
"""

import os
import time

import pytest

from repro.baselines.decay import BatchDecayBroadcast
from repro.graphs.random_digraph import (
    connectivity_threshold_probability,
    random_digraph,
)
from repro.radio.batch import BatchEngine
from repro.telemetry import (
    FileSink,
    NullSink,
    configure_telemetry,
    telemetry_shutdown,
)

N = 4096
TRIALS = 32


@pytest.fixture(scope="module")
def workload():
    p = connectivity_threshold_probability(N, delta=4.0)
    networks = [random_digraph(N, p, rng=7000 + t) for t in range(TRIALS)]
    yield networks
    telemetry_shutdown()


def _run(networks) -> float:
    engine = BatchEngine()
    start = time.perf_counter()
    results = engine.run(networks, BatchDecayBroadcast(), rng=13)
    seconds = time.perf_counter() - start
    assert all(r.completed for r in results)
    return seconds


def _run_enabled(networks, sink) -> float:
    configure_telemetry(sink=sink)
    try:
        return _run(networks)
    finally:
        telemetry_shutdown()


def test_bench_telemetry_overhead(benchmark, workload, tmp_path):
    """An installed pipeline must stay within 5% of the disabled engine."""
    networks = workload
    telemetry_shutdown()  # the disabled arm must really be disabled

    def disabled():
        return _run(networks)

    benchmark.pedantic(disabled, rounds=3, iterations=1)
    # Each run is ~1s but single timings still jitter and the jitter is
    # time-correlated (frequency scaling, neighbours on a shared box).  The
    # gate takes the best of five back-to-back (enabled, disabled) pair
    # ratios — the cleanest pair is the honest estimate of the pipeline's
    # cost — while the recorded seconds are each arm's floor.
    pair_ratios = []
    enabled_times = []
    disabled_times = []
    for _ in range(5):
        enabled_times.append(_run_enabled(networks, NullSink()))
        disabled_times.append(_run(networks))
        pair_ratios.append(enabled_times[-1] / disabled_times[-1])
    enabled_seconds = min(enabled_times)
    disabled_seconds = min(disabled_times)
    file_seconds = _run_enabled(networks, FileSink(tmp_path / "trace.jsonl"))
    overhead = min(pair_ratios)
    benchmark.extra_info.update(
        {
            "n": N,
            "trials": TRIALS,
            "disabled_seconds": disabled_seconds,
            "null_sink_seconds": enabled_seconds,
            "file_sink_seconds": file_seconds,
            "telemetry_overhead_ratio": overhead,
            "file_sink_ratio": file_seconds / disabled_seconds,
        }
    )
    print(
        f"\ndecay n={N} R={TRIALS}: disabled {disabled_seconds:.3f}s, "
        f"null sink {enabled_seconds:.3f}s "
        f"(best pair {overhead:.3f}x), "
        f"file sink {file_seconds:.3f}s "
        f"({file_seconds / disabled_seconds:.2f}x)"
    )
    # Timing gate is local-only (shared CI runners are too noisy); CI still
    # records the measured ratio in the JSON.
    if not os.environ.get("CI"):
        assert overhead <= 1.05
