"""Benchmark E5: Theorem 4.1: Algorithm 3 vs Czumaj-Rytter time and energy.

Regenerates the E5 table of EXPERIMENTS.md (run with ``-s`` to see it).
"""


def test_bench_e5_general_broadcast(benchmark, experiment_runner):
    result = experiment_runner(benchmark, "E5")
    assert result.rows
